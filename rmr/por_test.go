package rmr

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"testing"
)

// independentBody returns a body of procs processes that each write once to
// their own word: every pair of steps commutes, so the full tree has procs!
// schedules but only one equivalence class.
func independentBody(procs int) Body {
	return func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, procs, s)
		base := m.AllocN(procs, 0)
		for i := 0; i < procs; i++ {
			i := i
			p := m.Proc(i)
			s.GoProc(i, func() { p.Write(base+Addr(i), uint64(i)+1) })
		}
		if err := s.Run(maxSteps); err != nil {
			s.Drain()
			return err
		}
		for i := 0; i < procs; i++ {
			if got := m.Peek(base + Addr(i)); got != uint64(i)+1 {
				return fmt.Errorf("word %d = %d, want %d", i, got, i+1)
			}
		}
		return nil
	}
}

// dependentBody returns a body of procs processes that each F&A the same
// word twice: every pair of steps conflicts, so sleep sets can prune
// nothing and the reduced search must walk the exact full tree.
func dependentBody(procs int) Body {
	return func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, procs, s)
		shared := m.Alloc(0)
		for i := 0; i < procs; i++ {
			p := m.Proc(i)
			s.GoProc(i, func() {
				p.FAA(shared, 1)
				p.FAA(shared, 1)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			s.Drain()
			return err
		}
		if got := m.Peek(shared); got != uint64(2*procs) {
			return fmt.Errorf("shared = %d, want %d", got, 2*procs)
		}
		return nil
	}
}

// TestPORIndependentExactCounts pins the reduction on fully independent
// bodies to its hand-computed tree: one explored representative per class,
// the rest of the tree cut. (For n one-op processes the full tree has n!
// schedules, all equivalent.)
func TestPORIndependentExactCounts(t *testing.T) {
	for _, tc := range []struct {
		procs         int
		fullExplored  int
		porEquivalent int
	}{
		{2, 2, 1},
		{3, 6, 3},
	} {
		t.Run(fmt.Sprintf("procs=%d", tc.procs), func(t *testing.T) {
			body := independentBody(tc.procs)
			full := &Explorer{MaxSteps: 10}
			fres, err := full.Run(tc.procs, body)
			if err != nil {
				t.Fatal(err)
			}
			if fres.Explored != tc.fullExplored || fres.Pruned != 0 || !fres.Exhausted {
				t.Fatalf("full: %+v, want Explored=%d Pruned=0 Exhausted=true", fres, tc.fullExplored)
			}
			por := &Explorer{MaxSteps: 10, Reduction: SleepSets}
			pres, err := por.Run(tc.procs, body)
			if err != nil {
				t.Fatal(err)
			}
			if pres.Explored != 1 || pres.Pruned != 0 || pres.Equivalent != tc.porEquivalent || !pres.Exhausted {
				t.Fatalf("por: %+v, want Explored=1 Pruned=0 Equivalent=%d Exhausted=true",
					pres, tc.porEquivalent)
			}
		})
	}
}

// TestPORDependentNoReduction: on a fully conflicting body the reduced
// search must degenerate to the full one — identical counts, nothing cut.
func TestPORDependentNoReduction(t *testing.T) {
	body := dependentBody(2)
	full := &Explorer{MaxSteps: 10}
	fres, err := full.Run(2, body)
	if err != nil {
		t.Fatal(err)
	}
	por := &Explorer{MaxSteps: 10, Reduction: SleepSets}
	pres, err := por.Run(2, body)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Equivalent != 0 || !resultsEqual(pres, fres) {
		t.Fatalf("por result %+v differs from full %+v on a fully dependent body", pres, fres)
	}
	if fres.Explored != 6 || !fres.Exhausted {
		t.Fatalf("full result %+v, want 6 explored interleavings of 2×2 conflicting ops", fres)
	}
}

// TestPORSpinlockAgreement: on the real explorer workload the reduced
// search must reach the same verdict as the full one — exhausted, no
// violation — with strictly fewer replays.
func TestPORSpinlockAgreement(t *testing.T) {
	const maxSteps = 11
	full := &Explorer{MaxSteps: maxSteps}
	fres, err := full.Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	por := &Explorer{MaxSteps: maxSteps, Reduction: SleepSets}
	pres, err := por.Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Exhausted != fres.Exhausted {
		t.Errorf("Exhausted: por %v, full %v", pres.Exhausted, fres.Exhausted)
	}
	if pres.Replays() >= fres.Replays() {
		t.Errorf("por replays %d, full %d: no reduction on the spinlock tree",
			pres.Replays(), fres.Replays())
	}
	t.Logf("full: %d replays (%d explored); por: %d replays (%d explored, %d pruned, %d equivalent)",
		fres.Replays(), fres.Explored, pres.Replays(), pres.Explored, pres.Pruned, pres.Equivalent)
}

// TestPORParallelEquivalence: with reduction on, an uncapped parallel
// exploration must still produce exactly the sequential Result at every
// worker count — the deterministic-count guarantee, now over classes.
func TestPORParallelEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		body     Body
		maxSteps int
	}{
		{"spinlock-goproc", spinLockBody, 11},
		{"spinlock-go", spinLockBodyGo, 11},
		{"independent", independentBody(3), 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := &Explorer{MaxSteps: tc.maxSteps, Reduction: SleepSets}
			want, err := seq.Run(3, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			if want.Explored == 0 {
				t.Fatal("sequential run explored nothing")
			}
			for _, workers := range []int{2, 4, 8} {
				par := &Explorer{MaxSteps: tc.maxSteps, Workers: workers, Reduction: SleepSets}
				got, err := par.Run(3, tc.body)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !resultsEqual(got, want) {
					t.Errorf("workers=%d: Result = %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

// buggyLockBodyTraced is buggyLockBody with an event tracer installed, for
// replaying a reported schedule under the flight recorder.
func buggyLockBodyTraced(events *[]Event) Body {
	return func(s *Scheduler, maxSteps int) error {
		const procs = 2
		m := NewMemory(CC, procs, nil)
		lock := m.Alloc(0)
		inCS := m.Alloc(0)
		bad := m.Alloc(0)
		m.SetTracer(func(ev Event) { *events = append(*events, ev) })
		m.SetGate(s)
		for i := 0; i < procs; i++ {
			p := m.Proc(i)
			s.GoProc(i, func() {
				for p.Read(lock) != 0 {
					if p.AbortSignal() {
						return
					}
				}
				p.Write(lock, 1)
				if p.FAA(inCS, 1) > 0 {
					p.Write(bad, 1)
				}
				p.FAA(inCS, ^uint64(0))
				p.Write(lock, 0)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			for i := 0; i < procs; i++ {
				m.Proc(i).SignalAbort()
			}
			s.Drain()
			return err
		}
		if m.Peek(bad) != 0 {
			return errors.New("mutual exclusion violated")
		}
		return nil
	}
}

// TestPORViolationLexminAndReplay: on a buggy body the reduced search —
// sequential and parallel — must report exactly the schedule the full
// sequential DFS finds first (the lexicographically smallest violation),
// and that schedule must replay through ReplayPick to the same property
// failure with a tracer installed, producing an internally consistent
// trace.
func TestPORViolationLexminAndReplay(t *testing.T) {
	const maxSteps = 12
	full := &Explorer{MaxSteps: maxSteps}
	_, err := full.Run(2, buggyLockBody)
	var want *ErrExplore
	if !errors.As(err, &want) {
		t.Fatalf("full search found no violation: %v", err)
	}
	por := &Explorer{MaxSteps: maxSteps, Reduction: SleepSets}
	_, err = por.Run(2, buggyLockBody)
	var got *ErrExplore
	if !errors.As(err, &got) {
		t.Fatalf("reduced search found no violation: %v", err)
	}
	if !slices.Equal(got.Schedule, want.Schedule) {
		t.Fatalf("por schedule %v, full lexmin schedule %v", got.Schedule, want.Schedule)
	}
	for _, workers := range []int{2, 4} {
		par := &Explorer{MaxSteps: maxSteps, Workers: workers, Reduction: SleepSets}
		_, err := par.Run(2, buggyLockBody)
		var pe *ErrExplore
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: no violation: %v", workers, err)
		}
		if !slices.Equal(pe.Schedule, want.Schedule) {
			t.Errorf("workers=%d: schedule %v, want %v", workers, pe.Schedule, want.Schedule)
		}
	}

	// Round-trip: replay the POR-reported schedule with the tracer on.
	var events []Event
	s := NewScheduler(2, ReplayPick(got.Schedule))
	rerr := buggyLockBodyTraced(&events)(s, maxSteps)
	if rerr == nil || errors.Is(rerr, ErrStepLimit) {
		t.Fatalf("replay did not reproduce the violation: %v", rerr)
	}
	if rerr.Error() != got.Err.Error() {
		t.Errorf("replayed failure %q, explored failure %q", rerr, got.Err)
	}
	if len(events) == 0 {
		t.Fatal("tracer recorded no events")
	}
	if cerr := CheckTrace(events, nil); cerr != nil {
		t.Errorf("replayed trace inconsistent: %v", cerr)
	}
}

// fuzzOp is one straight-line operation of a randomized body.
type fuzzOp struct {
	kind byte // 0 read, 1 write, 2 CAS, 3 F&A
	word int
	arg  uint64
	arg2 uint64
}

// fuzzBody runs one random straight-line program per process over nwords
// shared words and fails iff a hash of all per-process operation results
// and the final memory contents lands in a fixed residue class. Per-process
// results and final contents are invariant under reordering commuting
// steps, so the verdict is a function of the schedule's equivalence class —
// the contract the reduction requires — while still depending on the
// interleaving of conflicting steps, so some classes violate and others
// don't.
func fuzzBody(progs [][]fuzzOp, nwords int, hmod uint64) Body {
	nprocs := len(progs)
	return func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, nprocs, s)
		base := m.AllocN(nwords, 0)
		results := make([][]uint64, nprocs)
		for i := 0; i < nprocs; i++ {
			i := i
			p := m.Proc(i)
			prog := progs[i]
			results[i] = make([]uint64, len(prog))
			s.GoProc(i, func() {
				for j, op := range prog {
					a := base + Addr(op.word)
					switch op.kind {
					case 0:
						results[i][j] = p.Read(a)
					case 1:
						p.Write(a, op.arg)
						results[i][j] = op.arg
					case 2:
						if p.CAS(a, op.arg, op.arg2) {
							results[i][j] = 1
						}
					case 3:
						results[i][j] = p.FAA(a, op.arg)
					}
				}
			})
		}
		if err := s.Run(maxSteps); err != nil {
			s.Drain()
			return err
		}
		h := uint64(14695981039346656037)
		fold := func(v uint64) { h = (h ^ (v + 1)) * 1099511628211 }
		for i := range results {
			for _, v := range results[i] {
				fold(v)
			}
		}
		for w := 0; w < nwords; w++ {
			fold(m.Peek(base + Addr(w)))
		}
		if h%hmod == 0 {
			return fmt.Errorf("hash residue violation (h=%d)", h)
		}
		return nil
	}
}

// TestPORFuzzAgreesWithFull is the cross-check property test: on random
// small bodies the reduced and the full search must agree on whether a
// violation exists and, when one does, on the reported lexmin violating
// schedule; violation-free runs must agree on Exhausted.
func TestPORFuzzAgreesWithFull(t *testing.T) {
	const seeds = 60
	violations := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 + rng.Intn(2)
		const nwords = 2
		progs := make([][]fuzzOp, nprocs)
		steps := 0
		for i := range progs {
			ops := make([]fuzzOp, 3+rng.Intn(2))
			for j := range ops {
				ops[j] = fuzzOp{
					kind: byte(rng.Intn(4)),
					word: rng.Intn(nwords),
					arg:  uint64(rng.Intn(3)),
					arg2: uint64(1 + rng.Intn(3)),
				}
			}
			progs[i] = ops
			steps += len(ops)
		}
		body := fuzzBody(progs, nwords, 5)

		full := &Explorer{MaxSteps: steps + 2}
		fres, ferr := full.Run(nprocs, body)
		por := &Explorer{MaxSteps: steps + 2, Reduction: SleepSets}
		pres, perr := por.Run(nprocs, body)

		var fe, pe *ErrExplore
		fviol := errors.As(ferr, &fe)
		pviol := errors.As(perr, &pe)
		if fviol != pviol {
			t.Fatalf("seed %d: full violation=%v, por violation=%v (full err %v, por err %v)",
				seed, fviol, pviol, ferr, perr)
		}
		if fviol {
			violations++
			if !slices.Equal(fe.Schedule, pe.Schedule) {
				t.Fatalf("seed %d: por schedule %v, full lexmin %v", seed, pe.Schedule, fe.Schedule)
			}
			continue
		}
		if ferr != nil || perr != nil {
			t.Fatalf("seed %d: unexpected errors full=%v por=%v", seed, ferr, perr)
		}
		if fres.Pruned != 0 {
			t.Fatalf("seed %d: straight-line body pruned %d schedules", seed, fres.Pruned)
		}
		if !fres.Exhausted || !pres.Exhausted {
			t.Fatalf("seed %d: Exhausted full=%v por=%v", seed, fres.Exhausted, pres.Exhausted)
		}
		if pres.Replays() > fres.Replays() {
			t.Fatalf("seed %d: por replayed more (%d) than full (%d)",
				seed, pres.Replays(), fres.Replays())
		}
	}
	if violations == 0 {
		t.Error("fuzz corpus produced no violating bodies; weaken the residue class")
	}
	t.Logf("%d/%d seeds violated; por agreed on all", violations, seeds)
}

// poolSettled reports whether every pooled goroutine has re-enlisted in the
// free list — true between replays once the in-flight pushes land.
func poolSettled(pp *procPool) bool {
	nodes := pp.nodes.Load()
	if nodes == nil {
		return true
	}
	total := len(*nodes)
	n := 0
	for idx := uint32(pp.head.Load()); idx != 0 && n <= total; {
		n++
		idx = (*nodes)[idx-1].next.Load()
	}
	return n == total
}

// TestPORReplayDoesNotAllocate is the steady-state allocation guard for the
// replay loop with reduction enabled: with a body that reuses its memory
// (reset via Poke) and prebuilt process closures, a full replay — run,
// reduction bookkeeping, backfill, drain on cut schedules, pooled
// goroutine dispatch through the lock-free free list — allocates nothing.
func TestPORReplayDoesNotAllocate(t *testing.T) {
	const procs, maxSteps = 3, 14
	rp := newReplayer(procs, exploreConfig{maxSteps: maxSteps, red: SleepSets})
	defer rp.close()
	m := NewMemory(CC, procs, rp.s)
	lock := m.Alloc(0)
	count := m.Alloc(0)
	var fns [procs]func()
	for i := 0; i < procs; i++ {
		p := m.Proc(i)
		fns[i] = func() {
			for !p.CAS(lock, 0, 1) {
				if p.AbortSignal() {
					return
				}
			}
			p.FAA(count, 1)
			p.Write(lock, 0)
		}
	}
	errStalled := fmt.Errorf("stalled: %w", ErrStepLimit)
	body := func(s *Scheduler, budget int) error {
		m.Poke(lock, 0)
		m.Poke(count, 0)
		for i := 0; i < procs; i++ {
			m.Proc(i).ClearAbort()
		}
		for i := 0; i < procs; i++ {
			s.GoProc(i, fns[i])
		}
		if err := s.Run(budget); err != nil {
			for i := 0; i < procs; i++ {
				m.Proc(i).SignalAbort()
			}
			s.Drain()
			return errStalled
		}
		return nil
	}
	rec := &rp.rec
	// Warm up: replay the leftmost schedule so the snapshot rows cover the
	// root and the goroutine pool is populated.
	if err := rp.run(nil, body, maxSteps); err != nil {
		t.Fatal(err)
	}
	rec.backfill()
	if len(rec.taken) == 0 || rec.width[0] < 2 {
		t.Fatalf("warmup tree too narrow: taken=%v width=%v", rec.taken, rec.width)
	}
	seedOp := make([]stepAccess, procs)
	seedMask := rec.childSleep(0, 1, seedOp)
	prefix := []int{1}
	settle := func() {
		for !poolSettled(&rp.pool) {
			runtime.Gosched()
		}
	}
	settle()
	got := testing.AllocsPerRun(100, func() {
		rec.por.seedMask = seedMask
		copy(rec.por.seedOp, seedOp)
		if err := rp.run(prefix, body, maxSteps); err != nil && !errors.Is(err, ErrStepLimit) {
			t.Error(err)
		}
		rec.backfill()
		settle()
	})
	if got != 0 {
		t.Errorf("steady-state replay allocates %v objects per run, want 0", got)
	}
}
