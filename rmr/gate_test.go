package rmr

import (
	"errors"
	"testing"
)

// runCounters runs n processes that each FAA a shared counter `per` times
// under the given scheduler and returns the final counter value.
func runCounters(t *testing.T, n, per int, pick PickFunc, maxSteps int) (uint64, error) {
	t.Helper()
	s := NewScheduler(n, pick)
	m := NewMemory(CC, n, s)
	a := m.Alloc(0)
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		s.Go(func() {
			for j := 0; j < per; j++ {
				p.FAA(a, 1)
			}
		})
	}
	err := s.Run(maxSteps)
	if err != nil {
		s.Drain()
	}
	return m.Peek(a), err
}

func TestSchedulerRunsAll(t *testing.T) {
	got, err := runCounters(t, 5, 20, RandomPick(1), 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestSchedulerRoundRobin(t *testing.T) {
	got, err := runCounters(t, 4, 10, RoundRobinPick(), 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
}

func TestSchedulerStepLimit(t *testing.T) {
	_, err := runCounters(t, 2, 1000, RandomPick(7), 10)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	// The same seed must produce the same interleaving. Record the order of
	// winners of a CAS race across two runs.
	run := func(seed int64) []uint64 {
		const n = 4
		s := NewScheduler(n, RandomPick(seed))
		m := NewMemory(CC, n, s)
		a := m.Alloc(0)
		log := m.Alloc(0) // accumulates winner ids in base-8 digits
		for i := 0; i < n; i++ {
			p := m.Proc(i)
			s.Go(func() {
				for !p.CAS(a, 0, uint64(p.ID())+1) {
					p.Read(a)
				}
				p.FAA(log, uint64(p.ID())+1)
				p.Write(a, 0)
			})
		}
		if err := s.Run(1_000_000); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return []uint64{m.Peek(log)}
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if a[0] != b[0] {
			t.Fatalf("seed %d: runs diverged: %v vs %v", seed, a, b)
		}
	}
}

func TestPreferPick(t *testing.T) {
	// With process 1 preferred, it should finish all its steps before
	// process 0 takes any (both only FAA, so both are always ready).
	const n = 2
	s := NewScheduler(n, PreferPick([]int{1}, RandomPick(3)))
	m := NewMemory(CC, n, s)
	a := m.Alloc(0)
	firstSeen := m.Alloc(0) // records the first writer: 0 means proc1 won
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		s.Go(func() {
			p.CAS(firstSeen, 0, uint64(p.ID())+1)
			for j := 0; j < 5; j++ {
				p.FAA(a, 1)
			}
		})
	}
	if err := s.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Peek(firstSeen); got != 2 {
		t.Fatalf("first CAS winner token = %d, want 2 (process 1)", got)
	}
}

func TestControllerStepByStep(t *testing.T) {
	c := NewController(2)
	m := NewMemory(CC, 2, c)
	a := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)

	c.Go(0, func() {
		p0.Write(a, 1)
		p0.Write(a, 2)
		p0.Write(a, 3)
	})
	c.Go(1, func() {
		p1.Write(a, 100)
	})

	if !c.Step(0) {
		t.Fatal("Step(0) reported finished too early")
	}
	if got := m.Peek(a); got != 1 {
		t.Fatalf("after step 1: a = %d, want 1", got)
	}
	c.Step(1) // p1 writes 100 and finishes
	if got := m.Peek(a); got != 100 {
		t.Fatalf("after p1: a = %d, want 100", got)
	}
	steps := c.Finish(0, 100)
	if steps != 2 {
		t.Fatalf("Finish(0) = %d steps, want 2", steps)
	}
	if got := m.Peek(a); got != 3 {
		t.Fatalf("final a = %d, want 3", got)
	}
	c.Wait()
	if !c.Finished(0) || !c.Finished(1) {
		t.Fatal("processes not marked finished")
	}
}

func TestControllerStepN(t *testing.T) {
	c := NewController(1)
	m := NewMemory(CC, 1, c)
	a := m.Alloc(0)
	p := m.Proc(0)
	c.Go(0, func() {
		for i := 0; i < 4; i++ {
			p.FAA(a, 1)
		}
	})
	if got := c.StepN(0, 2); got != 2 {
		t.Fatalf("StepN = %d, want 2", got)
	}
	if got := m.Peek(a); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
	c.Wait()
	if got := m.Peek(a); got != 4 {
		t.Fatalf("final a = %d, want 4", got)
	}
}

func TestControllerDoubleLaunchPanics(t *testing.T) {
	c := NewController(1)
	c.Go(0, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
		c.Wait()
	}()
	c.Go(0, func() {})
}

func TestGatedAbortSignal(t *testing.T) {
	// A process spinning under the scheduler escapes via its abort signal,
	// demonstrating the harness pattern used for liveness tests.
	s := NewScheduler(1, RandomPick(1))
	m := NewMemory(CC, 1, s)
	a := m.Alloc(0)
	p := m.Proc(0)
	aborted := false
	s.Go(func() {
		for p.Read(a) == 0 {
			if p.AbortSignal() {
				aborted = true
				return
			}
		}
	})
	if err := s.Run(100); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit", err)
	}
	p.SignalAbort()
	s.Drain()
	if !aborted {
		t.Fatal("process did not abort")
	}
	p.ClearAbort()
	if p.AbortSignal() {
		t.Fatal("ClearAbort did not clear the signal")
	}
}
