package rmr

import (
	"sync/atomic"
)

// Proc is a process's handle to the shared memory. All shared-memory
// operations are methods on Proc so that every remote memory reference can
// be charged to the process that issued it.
//
// A Proc must be used by at most one goroutine at a time (a process is a
// single thread of control); distinct Procs may run concurrently.
//
// The operation methods perform no heap allocation in steady state: trace
// events are only materialized when an observer (tracer or Stats) is
// installed, which keeps the simulation hot path allocation- and
// contention-free (asserted by TestOperationsDoNotAllocate).
type Proc struct {
	m  *Memory
	id int

	rmrs  atomic.Int64 // remote memory references charged so far
	steps atomic.Int64 // total shared-memory operations issued
	stime atomic.Int64 // simulated time accrued under a non-nil cost model

	abort atomic.Bool // external abort signal (§2: delivered from outside)

	// wait is the adaptive free-running waiting state behind Wait
	// (wait.go); untouched under a schedule gate.
	wait procWait

	// phase is the passage phase declared via EnterPhase. Only the owning
	// goroutine writes it; observers read it while holding the word lock
	// of an operation the owner itself issued, so a plain field suffices.
	phase Phase
}

// ID returns the process identifier, in [0, Memory.NumProcs()).
func (p *Proc) ID() int { return p.id }

// Memory returns the memory this process belongs to.
func (p *Proc) Memory() *Memory { return p.m }

// RMRs returns the total number of remote memory references this process
// has incurred. Harnesses snapshot it before and after a passage to obtain
// the passage's RMR cost.
func (p *Proc) RMRs() int64 { return p.rmrs.Load() }

// Steps returns the total number of shared-memory operations issued.
func (p *Proc) Steps() int64 { return p.steps.Load() }

// SimTime returns the simulated time this process has accumulated under the
// memory's cost model: the sum of the costs of its operations, in simulated
// nanoseconds for the built-in non-unit models. Under the default Unit model
// every charged operation costs one tick, so SimTime equals RMRs. Harnesses
// snapshot it before and after a passage to obtain the passage's simulated
// latency, exactly as they do with RMRs.
func (p *Proc) SimTime() int64 {
	if p.m.cost == nil {
		return p.rmrs.Load()
	}
	return p.stime.Load()
}

// SignalAbort delivers the external abort signal to the process. The signal
// is sticky until ClearAbort is called. A process parked by Wait is woken,
// so a blocked waiter observes the signal within a bounded number of steps.
func (p *Proc) SignalAbort() {
	p.abort.Store(true)
	if pk := p.wait.parked.Load(); pk != nil {
		pk.wake()
	}
}

// ClearAbort resets the abort signal, typically between passages.
func (p *Proc) ClearAbort() { p.abort.Store(false) }

// AbortSignal reports whether the external abort signal is pending. Reading
// the signal is not a shared-memory operation and incurs no RMR (the paper
// models it as an external event, not a shared variable).
func (p *Proc) AbortSignal() bool { return p.abort.Load() }

// EnterPhase declares that the process is now in the given passage phase.
// Locks call it at their phase boundaries (doorway entry, the start of the
// waiting loop, critical-section entry, exit protocol, abort path, and
// PhaseIdle when the passage is over); subsequent operations are attributed
// to the phase in trace events and Stats. Entering the current phase again
// is a no-op. EnterPhase is not a shared-memory operation: it incurs no
// RMR, takes no schedule step, and — with no observer installed — performs
// a single plain store, so instrumented locks explore the exact same
// schedule tree and report the exact same RMR counts as uninstrumented
// ones.
func (p *Proc) EnterPhase(ph Phase) {
	old := p.phase
	if ph == old {
		return
	}
	p.phase = ph
	if s := p.m.sched; s != nil && s.wdBound > 0 {
		// Liveness watchdog (Scheduler.SetWatchdog): phase transitions are
		// its only input. Plain-field guard keeps the watchdog-off path a
		// single store, like the observer below.
		s.notePhase(p.id, old, ph)
	}
	o := p.m.obs.Load()
	if o == nil {
		return
	}
	if o.stats != nil {
		o.stats.phaseChange(p, old, ph)
	}
	if o.tracer != nil {
		o.tracer(Event{
			Proc: p.id, Op: OpPhase, Addr: -1,
			Old: uint64(old), New: uint64(ph), OK: true,
			Time: p.m.clock.Add(1), Phase: ph, STime: p.SimTime(),
		})
	}
}

// Phase returns the passage phase last declared with EnterPhase.
func (p *Proc) Phase() Phase { return p.phase }

// step performs gate arbitration and operation counting common to every
// shared-memory operation, and reports the operation's footprint (word
// address, read vs. mutate) to the scheduler for the Explorer's
// partial-order reduction. The Scheduler gate is called directly rather
// than through the interface: the per-step call is the hottest edge in an
// exploration.
func (p *Proc) step(a Addr, mut bool) {
	if s := p.m.sched; s != nil {
		s.Await(p.id)
		s.noteAccess(a, mut)
	} else if g := p.m.gate; g != nil {
		g.Await(p.id)
	}
	p.steps.Add(1)
}

// observe folds the operation's result into the process's observation
// history for the Explorer's visited-state reduction — a no-op (one nil
// check) unless an exploration enabled it. Only the gated exclusive fast
// paths call it: an exploration always takes those, and the free-running
// paths have no quiescent points to fingerprint at.
func (p *Proc) observe(a Addr, v uint64) {
	if s := p.m.sched; s != nil && s.hist != nil {
		s.noteResult(p.id, a, v, p.abort.Load())
	}
}

// charge counts one RMR and prices it under the memory's cost model. The
// attempt ordinal handed to the model is the process's cumulative RMR count
// after the charge — deterministic wherever RMR counts are — so seeded
// models reproduce bit-identical costs on replays (see CostModel).
func (p *Proc) charge(class OpClass) int64 {
	n := p.rmrs.Add(1)
	cm := p.m.cost
	if cm == nil {
		return 1
	}
	c := cm.Cost(p.id, n, class)
	p.stime.Add(c)
	return c
}

// localCost prices an operation that charged no RMR. The built-in models
// price local hits at zero (free-running spin re-reads are not
// deterministic, see CostModel), so under them this is a single nil-check;
// the step ordinal is passed for custom models that do cost hits.
func (p *Proc) localCost(class OpClass) int64 {
	cm := p.m.cost
	if cm == nil {
		return 0
	}
	c := cm.Cost(p.id, p.steps.Load(), class)
	if c != 0 {
		p.stime.Add(c)
	}
	return c
}

// chargeRead charges the RMR cost of a read of w under the memory model and
// updates coherence state, reporting whether an RMR was charged and the
// operation's simulated cost. The word's mutex must be held.
func (p *Proc) chargeRead(w *word) (rmr bool, cost int64) {
	switch p.m.model {
	case CC:
		if !w.cached.has(p.id) {
			w.cached.add(p.id)
			return true, p.charge(ClassRemoteMiss)
		}
	case DSM:
		if int(w.owner) != p.id {
			return true, p.charge(ClassRemoteMiss)
		}
	}
	return false, p.localCost(ClassLocalHit)
}

// chargeUpdate charges the RMR cost of a write/CAS/F&A/SWAP of w and updates
// coherence state, reporting whether an RMR was charged and the operation's
// simulated cost under the given class (ClassInvalidation for plain writes,
// ClassAtomicRMW for CAS/F&A/SWAP): under CC every update is an RMR and
// invalidates all other processes' copies, leaving the updater with a valid
// copy. The word's mutex must be held.
func (p *Proc) chargeUpdate(w *word, class OpClass) (rmr bool, cost int64) {
	switch p.m.model {
	case CC:
		w.cached.clearExcept(p.id)
		return true, p.charge(class)
	case DSM:
		if int(w.owner) != p.id {
			return true, p.charge(class)
		}
	}
	return false, p.localCost(ClassLocalHit)
}

// Read atomically reads the word at a.
func (p *Proc) Read(a Addr) uint64 {
	p.step(a, false)
	m := p.m
	w := m.word(a)
	o := m.obs.Load()
	if o == nil {
		if m.exclusive() {
			p.chargeRead(w)
			v := w.val.Load()
			p.observe(a, v)
			return v
		}
		switch m.model {
		case DSM:
			// A DSM read changes no coherence state — the word's home is
			// fixed — so it is a single atomic load.
			p.chargeRead(w)
			return w.val.Load()
		case CC:
			if !m.wide {
				// Seqlock fast path: a cached read mutates nothing, so it
				// is free to run lock-free when no update overlapped the
				// (cached, val) snapshot.
				s := w.seq.Load()
				if s&1 == 0 && w.cached.inline.Load()&(1<<uint(p.id)) != 0 {
					v := w.val.Load()
					if w.seq.Load() == s {
						p.localCost(ClassLocalHit)
						return v
					}
				}
				// Uncached: charging mutates the cache set, so take the
				// seqlock like an update.
				s = w.claim()
				p.chargeRead(w)
				v := w.val.Load()
				w.release(s)
				return v
			}
		}
	}
	w.mu.Lock()
	var hit bool
	if o != nil {
		hit, _ = p.cacheState(w, false)
	}
	rmr, cost := p.chargeRead(w)
	v := w.val.Load()
	if o != nil {
		m.observe(o, p, w, Event{Proc: p.id, Op: OpRead, Addr: a, Old: v, New: v, OK: true, RMR: rmr, Cost: cost}, hit, 0)
	}
	w.mu.Unlock()
	return v
}

// Write atomically writes v to the word at a.
func (p *Proc) Write(a Addr, v uint64) {
	p.step(a, true)
	m := p.m
	w := m.word(a)
	o := m.obs.Load()
	if o == nil {
		if m.exclusive() {
			p.chargeUpdate(w, ClassInvalidation)
			w.val.Store(v)
			p.observe(a, v)
			return
		}
		if m.model == DSM {
			p.chargeUpdate(w, ClassInvalidation)
			w.val.Store(v)
			m.wakeup(a)
			return
		}
		if !m.wide {
			s := w.claim()
			p.chargeUpdate(w, ClassInvalidation)
			w.val.Store(v)
			w.release(s)
			m.wakeup(a)
			return
		}
	}
	w.mu.Lock()
	var hit bool
	var invals int
	if o != nil {
		hit, invals = p.cacheState(w, true)
	}
	w.seq.Add(1)
	rmr, cost := p.chargeUpdate(w, ClassInvalidation)
	old := w.val.Load()
	w.val.Store(v)
	w.seq.Add(1)
	if o != nil {
		m.observe(o, p, w, Event{Proc: p.id, Op: OpWrite, Addr: a, Old: old, New: v, OK: true, RMR: rmr, Cost: cost}, hit, invals)
	}
	w.mu.Unlock()
	m.wakeup(a)
}

// CAS atomically compares the word at a with old and, if equal, replaces it
// with new, reporting whether the replacement happened. Both successful and
// failed CAS operations are charged as updates, per §2 ("each write, CAS, or
// F&A incurs an RMR").
func (p *Proc) CAS(a Addr, old, new uint64) bool {
	p.step(a, true)
	m := p.m
	w := m.word(a)
	o := m.obs.Load()
	if o == nil {
		if m.exclusive() {
			p.chargeUpdate(w, ClassAtomicRMW)
			if w.val.Load() != old {
				p.observe(a, 0)
				return false
			}
			w.val.Store(new)
			p.observe(a, 1)
			return true
		}
		if m.model == DSM {
			p.chargeUpdate(w, ClassAtomicRMW)
			ok := w.val.CompareAndSwap(old, new)
			if ok {
				m.wakeup(a)
			}
			return ok
		}
		if !m.wide {
			s := w.claim()
			p.chargeUpdate(w, ClassAtomicRMW)
			ok := w.val.Load() == old
			if ok {
				w.val.Store(new)
			}
			w.release(s)
			if ok {
				m.wakeup(a)
			}
			return ok
		}
	}
	w.mu.Lock()
	var hit bool
	var invals int
	if o != nil {
		hit, invals = p.cacheState(w, true)
	}
	w.seq.Add(1)
	rmr, cost := p.chargeUpdate(w, ClassAtomicRMW)
	ok := w.val.CompareAndSwap(old, new)
	w.seq.Add(1)
	if o != nil {
		if ok {
			m.observe(o, p, w, Event{Proc: p.id, Op: OpCAS, Addr: a, Old: old, New: new, OK: true, RMR: rmr, Cost: cost}, hit, invals)
		} else {
			cur := w.val.Load()
			m.observe(o, p, w, Event{Proc: p.id, Op: OpCAS, Addr: a, Old: cur, New: cur, OK: false, RMR: rmr, Cost: cost}, hit, invals)
		}
	}
	w.mu.Unlock()
	if ok {
		m.wakeup(a)
	}
	return ok
}

// FAA atomically adds delta to the word at a and returns the previous value
// (Fetch-And-Add; delta may encode a subtraction in two's complement).
func (p *Proc) FAA(a Addr, delta uint64) uint64 {
	p.step(a, true)
	m := p.m
	w := m.word(a)
	o := m.obs.Load()
	if o == nil {
		if m.exclusive() {
			p.chargeUpdate(w, ClassAtomicRMW)
			old := w.val.Load()
			w.val.Store(old + delta)
			p.observe(a, old)
			return old
		}
		if m.model == DSM {
			p.chargeUpdate(w, ClassAtomicRMW)
			old := w.val.Add(delta) - delta
			m.wakeup(a)
			return old
		}
		if !m.wide {
			s := w.claim()
			p.chargeUpdate(w, ClassAtomicRMW)
			old := w.val.Load()
			w.val.Store(old + delta)
			w.release(s)
			m.wakeup(a)
			return old
		}
	}
	w.mu.Lock()
	var hit bool
	var invals int
	if o != nil {
		hit, invals = p.cacheState(w, true)
	}
	w.seq.Add(1)
	rmr, cost := p.chargeUpdate(w, ClassAtomicRMW)
	old := w.val.Load()
	w.val.Store(old + delta)
	w.seq.Add(1)
	if o != nil {
		m.observe(o, p, w, Event{Proc: p.id, Op: OpFAA, Addr: a, Old: old, New: old + delta, OK: true, RMR: rmr, Cost: cost}, hit, invals)
	}
	w.mu.Unlock()
	m.wakeup(a)
	return old
}

// Swap atomically stores v into the word at a and returns the previous value
// (Fetch-And-Store). It is not used by the paper's algorithm but is required
// by the MCS and Scott baselines.
func (p *Proc) Swap(a Addr, v uint64) uint64 {
	p.step(a, true)
	m := p.m
	w := m.word(a)
	o := m.obs.Load()
	if o == nil {
		if m.exclusive() {
			p.chargeUpdate(w, ClassAtomicRMW)
			old := w.val.Load()
			w.val.Store(v)
			p.observe(a, old)
			return old
		}
		if m.model == DSM {
			p.chargeUpdate(w, ClassAtomicRMW)
			old := w.val.Swap(v)
			m.wakeup(a)
			return old
		}
		if !m.wide {
			s := w.claim()
			p.chargeUpdate(w, ClassAtomicRMW)
			old := w.val.Load()
			w.val.Store(v)
			w.release(s)
			m.wakeup(a)
			return old
		}
	}
	w.mu.Lock()
	var hit bool
	var invals int
	if o != nil {
		hit, invals = p.cacheState(w, true)
	}
	w.seq.Add(1)
	rmr, cost := p.chargeUpdate(w, ClassAtomicRMW)
	old := w.val.Load()
	w.val.Store(v)
	w.seq.Add(1)
	if o != nil {
		m.observe(o, p, w, Event{Proc: p.id, Op: OpSwap, Addr: a, Old: old, New: v, OK: true, RMR: rmr, Cost: cost}, hit, invals)
	}
	w.mu.Unlock()
	m.wakeup(a)
	return old
}

// Yield marks a point where the process is willing to let others run, e.g.
// one iteration of a local spin. Under a gated memory it is a no-op (the
// gate already serializes steps); in free-running mode it yields the OS
// thread so single-CPU hosts make progress.
func (p *Proc) Yield() {
	if p.m.gate == nil {
		osyield()
	}
}
