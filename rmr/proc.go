package rmr

import (
	"sync/atomic"
)

// Proc is a process's handle to the shared memory. All shared-memory
// operations are methods on Proc so that every remote memory reference can
// be charged to the process that issued it.
//
// A Proc must be used by at most one goroutine at a time (a process is a
// single thread of control); distinct Procs may run concurrently.
type Proc struct {
	m  *Memory
	id int

	rmrs  atomic.Int64 // remote memory references charged so far
	steps atomic.Int64 // total shared-memory operations issued

	abort atomic.Bool // external abort signal (§2: delivered from outside)
}

// ID returns the process identifier, in [0, Memory.NumProcs()).
func (p *Proc) ID() int { return p.id }

// Memory returns the memory this process belongs to.
func (p *Proc) Memory() *Memory { return p.m }

// RMRs returns the total number of remote memory references this process
// has incurred. Harnesses snapshot it before and after a passage to obtain
// the passage's RMR cost.
func (p *Proc) RMRs() int64 { return p.rmrs.Load() }

// Steps returns the total number of shared-memory operations issued.
func (p *Proc) Steps() int64 { return p.steps.Load() }

// SignalAbort delivers the external abort signal to the process. The signal
// is sticky until ClearAbort is called.
func (p *Proc) SignalAbort() { p.abort.Store(true) }

// ClearAbort resets the abort signal, typically between passages.
func (p *Proc) ClearAbort() { p.abort.Store(false) }

// AbortSignal reports whether the external abort signal is pending. Reading
// the signal is not a shared-memory operation and incurs no RMR (the paper
// models it as an external event, not a shared variable).
func (p *Proc) AbortSignal() bool { return p.abort.Load() }

// step performs gate arbitration and operation counting common to every
// shared-memory operation.
func (p *Proc) step() {
	if g := p.m.gate; g != nil {
		g.Await(p.id)
	}
	p.steps.Add(1)
}

// chargeRead charges the RMR cost of a read of w under the memory model and
// updates coherence state, reporting whether an RMR was charged. The word's
// mutex must be held.
func (p *Proc) chargeRead(w *word) bool {
	switch p.m.model {
	case CC:
		if !w.cached.has(p.id) {
			p.rmrs.Add(1)
			w.cached.add(p.id)
			return true
		}
		return false
	case DSM:
		if int(w.owner) != p.id {
			p.rmrs.Add(1)
			return true
		}
	}
	return false
}

// chargeUpdate charges the RMR cost of a write/CAS/F&A/SWAP of w and updates
// coherence state, reporting whether an RMR was charged: under CC every
// update is an RMR and invalidates all other processes' copies, leaving the
// updater with a valid copy. The word's mutex must be held.
func (p *Proc) chargeUpdate(w *word) bool {
	switch p.m.model {
	case CC:
		p.rmrs.Add(1)
		w.cached.clearExcept(p.id)
		return true
	case DSM:
		if int(w.owner) != p.id {
			p.rmrs.Add(1)
			return true
		}
	}
	return false
}

// Read atomically reads the word at a.
func (p *Proc) Read(a Addr) uint64 {
	p.step()
	w := p.m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	rmr := p.chargeRead(w)
	p.m.trace(Event{Proc: p.id, Op: OpRead, Addr: a, Old: w.val, New: w.val, OK: true, RMR: rmr})
	return w.val
}

// Write atomically writes v to the word at a.
func (p *Proc) Write(a Addr, v uint64) {
	p.step()
	w := p.m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	rmr := p.chargeUpdate(w)
	old := w.val
	w.val = v
	p.m.trace(Event{Proc: p.id, Op: OpWrite, Addr: a, Old: old, New: v, OK: true, RMR: rmr})
}

// CAS atomically compares the word at a with old and, if equal, replaces it
// with new, reporting whether the replacement happened. Both successful and
// failed CAS operations are charged as updates, per §2 ("each write, CAS, or
// F&A incurs an RMR").
func (p *Proc) CAS(a Addr, old, new uint64) bool {
	p.step()
	w := p.m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	rmr := p.chargeUpdate(w)
	if w.val != old {
		p.m.trace(Event{Proc: p.id, Op: OpCAS, Addr: a, Old: w.val, New: w.val, OK: false, RMR: rmr})
		return false
	}
	w.val = new
	p.m.trace(Event{Proc: p.id, Op: OpCAS, Addr: a, Old: old, New: new, OK: true, RMR: rmr})
	return true
}

// FAA atomically adds delta to the word at a and returns the previous value
// (Fetch-And-Add; delta may encode a subtraction in two's complement).
func (p *Proc) FAA(a Addr, delta uint64) uint64 {
	p.step()
	w := p.m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	rmr := p.chargeUpdate(w)
	old := w.val
	w.val = old + delta
	p.m.trace(Event{Proc: p.id, Op: OpFAA, Addr: a, Old: old, New: w.val, OK: true, RMR: rmr})
	return old
}

// Swap atomically stores v into the word at a and returns the previous value
// (Fetch-And-Store). It is not used by the paper's algorithm but is required
// by the MCS and Scott baselines.
func (p *Proc) Swap(a Addr, v uint64) uint64 {
	p.step()
	w := p.m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	rmr := p.chargeUpdate(w)
	old := w.val
	w.val = v
	p.m.trace(Event{Proc: p.id, Op: OpSwap, Addr: a, Old: old, New: v, OK: true, RMR: rmr})
	return old
}

// Yield marks a point where the process is willing to let others run, e.g.
// one iteration of a local spin. Under a gated memory it is a no-op (the
// gate already serializes steps); in free-running mode it yields the OS
// thread so single-CPU hosts make progress.
func (p *Proc) Yield() {
	if p.m.gate == nil {
		osyield()
	}
}
