package rmr

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// State-hash visited caching and process-ID symmetry reduction for the
// Explorer.
//
// Visited caching cuts re-converging interleavings: at every free choice
// point the recorder fingerprints the quiescent global state — shared
// memory words with their coherence sets, each process's observation
// history, pending abort signals, crash-fault attempt counts, the waiting
// set — together with the depth and the current sleep set, and consults a
// lock-free visited set shared by the whole exploration. A hit means a
// previously replayed schedule reached an identical state at the same
// depth under the same sleep constraints, so every continuation from here
// is a replica of continuations already covered; the replay is cut and
// counted in Result.VisitedHits.
//
// Symmetry reduction restricts the schedule tree to canonical
// representatives of process-ID orbits: a process that has never been
// granted a step may only be granted if it is the smallest never-granted
// id of its role class. For ID-symmetric bodies (locks.Info.IDSymmetric)
// every schedule is equivalent — up to a class-preserving id permutation —
// to a canonical one, so exploring only canonical schedules preserves
// violation verdicts while cutting the (k-1)!-fold redundancy of k
// interchangeable processes. Cut replays count in Result.SymmetryCuts.
//
// Both reductions compose with sleep sets by a well-founded argument over
// the lexicographic schedule order: every cut is justified by a strictly
// lex-smaller schedule of the full tree with the same verdict, so the
// lex-least violating schedule can never be cut. See docs/MODEL.md
// ("State hashing & symmetry") for the soundness discussion, including
// the hash-compaction caveat.

// visitedSet is a lock-free, fixed-capacity open-addressing table of
// 64-bit state fingerprints. Slots hold the fingerprint directly; 0 is the
// empty-slot sentinel (fingerprint 0 is remapped on entry). Insertion is a
// CAS per probed slot and the table never evicts: eviction would make cut
// decisions depend on arrival order, destroying the deterministic counts.
// When the load limit is reached the table saturates — lookups still hit
// recorded keys, but new states are no longer recorded and determinism
// across worker counts is lost; Result.VisitedSaturated reports it.
type visitedSet struct {
	mask  uint64
	slots []atomic.Uint64
	used  atomic.Int64
	limit int64
	sat   atomic.Bool
}

// newVisitedSet sizes the table to at least entries slots, rounded up to a
// power of two. The insertion limit leaves 1/8 of the slots empty so probe
// chains terminate.
func newVisitedSet(entries int) *visitedSet {
	if entries <= 0 {
		entries = defaultVisitedCap
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	vs := &visitedSet{mask: uint64(n - 1), slots: make([]atomic.Uint64, n)}
	vs.limit = int64(n) - int64(n)/8
	if vs.limit < 1 {
		vs.limit = 1
	}
	return vs
}

// defaultVisitedCap is the visited-set capacity when Explorer.VisitedCap
// is zero: 1<<20 fingerprints (8 MiB).
const defaultVisitedCap = 1 << 20

// seen reports whether fp was already recorded, recording it if not (and
// if the table has room).
func (vs *visitedSet) seen(fp uint64) bool {
	if fp == 0 {
		fp = 0x9e3779b97f4a7c15 // 0 is the empty-slot sentinel
	}
	i := fp & vs.mask
	for {
		cur := vs.slots[i].Load()
		if cur == fp {
			return true
		}
		if cur == 0 {
			if vs.used.Load() >= vs.limit {
				vs.sat.Store(true)
				return false
			}
			if vs.slots[i].CompareAndSwap(0, fp) {
				vs.used.Add(1)
				return false
			}
			continue // re-examine the slot a racer just filled
		}
		i = (i + 1) & vs.mask
	}
}

// dump returns the recorded fingerprints in ascending order — a canonical
// serialization for checkpoints. It must only be called at quiescence (no
// concurrent inserts).
func (vs *visitedSet) dump() []uint64 {
	var out []uint64
	for i := range vs.slots {
		if fp := vs.slots[i].Load(); fp != 0 {
			out = append(out, fp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// load re-inserts a dumped fingerprint list (checkpoint resume).
func (vs *visitedSet) load(fps []uint64) {
	for _, fp := range fps {
		vs.seen(fp)
	}
}

// mix folds v into the running hash h with a splitmix64-style finalizer.
// The visited set stores only these 64-bit digests (hash compaction), so a
// collision silently merges two distinct states; with a strong mixer and
// bounded trees the probability is ~replays²/2⁶⁴ and any merge is
// deterministic — the same runs produce the same counts — but it is the
// price of the memory bound.
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return h
}

// visState is the recorder's visited-caching, symmetry and sharding
// machinery, the analogue of porState for the PR-9 reductions.
type visState struct {
	on     bool // visited caching enabled
	sym    bool // symmetry restriction enabled
	nprocs int
	s      *Scheduler  // for memory, history and fault-state access
	set    *visitedSet // shared across all replayers of the exploration

	// Per-replay cut classification, reset by replayer.run.
	vcut      bool // cut at an already-visited state
	scut      bool // cut at a symmetry-blocked choice point
	shardSkip bool // cut at the root: every choice belongs to another shard

	// Shard ownership of root-level choice indices; shardCount == 0
	// disables sharding.
	shard, shardCount int

	// Symmetry state. granted tracks the pids granted at least one step in
	// the current replay; grantedAt snapshots it at node entry per depth
	// (leftmost-writer discipline, like porState.sleepAt), so sibling
	// generation can re-evaluate canonicality at interior nodes. pidAt
	// mirrors porState.pidAt for explorations running symmetry without
	// sleep sets.
	classOf   []int32  // pid -> role-class index
	classMask []uint64 // class -> member pid mask
	granted   uint64
	grantedAt []uint64
	pidAt     []int32 // stride nprocs; unused when porState.pidAt serves
}

// active reports whether the recorder needs the extended pick path.
func (v *visState) active() bool { return v.on || v.sym || v.shardCount > 0 }

// initSym installs the role-class partition. classes lists the pid sets
// that are interchangeable; pids not mentioned get singleton classes (never
// restricted). nil classes puts every pid in one class.
func (v *visState) initSym(nprocs int, classes [][]int) {
	v.classOf = make([]int32, nprocs)
	for i := range v.classOf {
		v.classOf[i] = -1
	}
	if classes == nil {
		all := make([]int, nprocs)
		for i := range all {
			all[i] = i
		}
		classes = [][]int{all}
	}
	for _, class := range classes {
		var m uint64
		idx := int32(len(v.classMask))
		for _, pid := range class {
			if pid < 0 || pid >= nprocs {
				continue
			}
			m |= 1 << uint(pid)
			v.classOf[pid] = idx
		}
		v.classMask = append(v.classMask, m)
	}
	for pid, c := range v.classOf {
		if c < 0 {
			v.classOf[pid] = int32(len(v.classMask))
			v.classMask = append(v.classMask, 1<<uint(pid))
		}
	}
}

// symBlocked reports whether granting pid is non-canonical at a node with
// granted-mask g and waiting-mask wm: pid was never granted and a smaller
// never-granted pid of its class is waiting at this very node. Requiring
// the smaller pid to be present keeps the cut sound — the canonical
// alternative (swap the two interchangeable fresh pids, granting the
// smaller one here) must actually exist at this node — and means honest
// launch disciplines never strand a class.
func (v *visState) symBlocked(pid int, g, wm uint64) bool {
	if g&(1<<uint(pid)) != 0 {
		return false
	}
	min := bits.TrailingZeros64(v.classMask[v.classOf[pid]] &^ g)
	return min != pid && wm&(1<<uint(min)) != 0
}

// ownsRoot reports whether this shard owns root-level choice index c.
func (v *visState) ownsRoot(c int) bool {
	return v.shardCount == 0 || c%v.shardCount == v.shard
}

// ensureDepth grows the per-depth symmetry snapshots to cover depth step.
func (v *visState) ensureDepth(step int, needPid bool) {
	for len(v.grantedAt) <= step {
		v.grantedAt = append(v.grantedAt, 0)
		if needPid {
			for i := 0; i < v.nprocs; i++ {
				v.pidAt = append(v.pidAt, -1)
			}
		}
	}
}

// seen fingerprints the current quiescent state at the given depth and
// sleep mask and reports whether it was already visited, recording it if
// not. The fingerprint covers everything the continuation can depend on:
//
//   - every shared word's value and (CC) inline coherence set — the
//     memory-model state;
//   - each process's observation-history hash (Scheduler.hist): the
//     addresses, results and abort-flag observations of its operations so
//     far, which pin its control state because the body is deterministic;
//   - the pending abort flags (signals delivered but perhaps not yet
//     observed) and the waiting set;
//   - under a crash-only fault plan, each process's operation-attempt
//     count (crash points key off it);
//   - the depth and the sleep mask, so that a hit guarantees an identical
//     residual tree — this is what makes Explored/Pruned/Equivalent/
//     VisitedHits order-independent at any worker count, and what keeps
//     the sleep-set and visited reductions sound in combination (the
//     classical "ignoring problem" of state caching under sleep sets).
func (v *visState) seen(depth int, sleepMask uint64, waiting []int) bool {
	s := v.s
	m := s.mem
	if m == nil {
		return false // ungated body: nothing to fingerprint (see Body contract)
	}
	h := mix(0x8c9da6b1f8d3a7e5, uint64(depth))
	h = mix(h, sleepMask)
	h = mix(h, v.granted) // symmetry decisions below the node depend on it
	var wm uint64
	for _, pid := range waiting {
		wm |= 1 << uint(pid)
	}
	h = mix(h, wm)
	h = m.foldState(h)
	var ab uint64
	for i := range m.procs {
		if m.procs[i].abort.Load() && i < 64 {
			ab |= 1 << uint(i)
		}
	}
	h = mix(h, ab)
	for _, lh := range s.hist {
		h = mix(h, lh)
	}
	if f := s.fs; f != nil {
		for _, op := range f.ops {
			h = mix(h, uint64(uint32(op)))
		}
	}
	return v.set.seen(h)
}

// foldState folds every allocated word's value and inline coherence set
// into h. Called at quiescent pick points only: the step token serializes
// all operations, so the atomic loads form a consistent snapshot.
func (m *Memory) foldState(h uint64) uint64 {
	n := m.size.Load()
	var a int64
	for k := 0; a < n; k++ {
		seg := *m.segs[k].Load()
		lim := int64(len(seg))
		if n-a < lim {
			lim = n - a
		}
		for i := int64(0); i < lim; i++ {
			w := &seg[i]
			h = mix(h, w.val.Load())
			h = mix(h, w.cached.inline.Load())
		}
		a += lim
	}
	return h
}

// visPick is the extended PickFunc body for explorations running visited
// caching, symmetry or sharding without sleep sets; porPick integrates the
// same checks when sleep sets are on.
func (r *recorder) visPick(step int, waiting []int) int {
	v := &r.vis
	if v.sym {
		v.ensureDepth(step, true)
		base := step * v.nprocs
		for i, pid := range waiting {
			v.pidAt[base+i] = int32(pid)
		}
		v.grantedAt[step] = v.granted
	}
	if step < len(r.prefix) {
		choice := r.prefix[step]
		if choice >= len(waiting) {
			panic(badPrefix(step, choice, len(waiting)))
		}
		r.record(choice, waiting)
		return choice
	}
	if v.on && v.seen(step, 0, waiting) {
		v.vcut = true
		return -1
	}
	var wm uint64
	if v.sym {
		for _, pid := range waiting {
			wm |= 1 << uint(pid)
		}
	}
	symHit := false
	for i, pid := range waiting {
		if step == 0 && !v.ownsRoot(i) {
			continue
		}
		if v.sym && v.symBlocked(pid, v.granted, wm) {
			symHit = true
			continue
		}
		r.record(i, waiting)
		return i
	}
	if symHit {
		v.scut = true
	} else if step == 0 && v.shardCount > 0 {
		v.shardSkip = true
	}
	return -1
}

// record logs a taken choice and updates the granted mask.
func (r *recorder) record(choice int, waiting []int) {
	r.taken = append(r.taken, choice)
	r.width = append(r.width, len(waiting))
	if r.vis.sym {
		r.vis.granted |= 1 << uint(waiting[choice])
	}
}

// pidOf returns the pid of the choice-c sibling at depth d, from whichever
// per-depth snapshot is maintained.
func (r *recorder) pidOf(d, c int) int {
	if r.por.on {
		return int(r.por.pidAt[d*r.por.nprocs+c])
	}
	return int(r.vis.pidAt[d*r.vis.nprocs+c])
}

// skipSibling reports whether the choice-c sibling subtree at depth d must
// not be explored: a sleep-set member, a symmetry-non-canonical grant, or a
// root branch owned by another shard.
func (r *recorder) skipSibling(d, c int) bool {
	if r.por.on && r.asleep(d, c) {
		return true
	}
	v := &r.vis
	if d == 0 && v.shardCount > 0 && !v.ownsRoot(c) {
		return true
	}
	if v.sym {
		var wm uint64
		for i := 0; i < r.width[d]; i++ {
			wm |= 1 << uint(r.pidOf(d, i))
		}
		if v.symBlocked(r.pidOf(d, c), v.grantedAt[d], wm) {
			return true
		}
	}
	return false
}
