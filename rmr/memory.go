package rmr

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Model selects the memory model under which RMRs are counted.
type Model int

const (
	// CC is the cache-coherent model: reads of cached words are free;
	// updates invalidate other processes' copies.
	CC Model = iota + 1
	// DSM is the distributed shared-memory model: each word is local to one
	// process and remote to all others.
	DSM
)

// String returns the conventional abbreviation of the model.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case DSM:
		return "DSM"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Addr is the address of a shared word within a Memory.
type Addr int32

// NoOwner marks a word that is remote to every process in the DSM model
// (e.g. a global variable that lives in "home" memory).
const NoOwner = -1

// word is a single W-bit shared memory location together with the coherence
// bookkeeping needed to charge RMRs.
//
// Locking discipline: val is atomic, so single-value accesses (Peek, the
// DSM data path) never lock. Free-running CC operations that must mutate
// the value and the (inline) coherence set together serialize on the
// word's seqlock — claim flips seq odd, release flips it back even — while
// a cached read, which mutates nothing, validates a lock-free
// (inline, val) snapshot against seq. The mutex serves only the cold
// paths that need a critical section wider than the seqlock allows:
// traced operations (the event must be ordered with the mutation) and
// wide (nprocs > 64) memories, whose spilled cache sets are multi-word.
// Operations on a memory gated by an undrained Scheduler skip all of it:
// the step token already serializes them.
type word struct {
	mu     sync.Mutex
	seq    atomic.Uint32 // odd while an update is in flight
	val    atomic.Uint64
	cached cacheSet     // CC: set of processes holding a valid cached copy
	owner  int32        // DSM: process the word is local to, or NoOwner
	label  atomic.Int32 // label id for RMR attribution, 0 = unlabeled
}

// claim acquires the word's seqlock for mutation, leaving seq odd. Paired
// with release. Callers on the mutex paths bump seq inside mu instead; the
// two disciplines never contend for the same word (the mutex paths belong
// to whole-memory modes — tracing, wide cache sets — under which the
// seqlock paths are not taken).
func (w *word) claim() uint32 {
	for {
		s := w.seq.Load()
		if s&1 == 0 && w.seq.CompareAndSwap(s, s+1) {
			return s
		}
		osyield()
	}
}

// release ends a claim, making the mutation visible to snapshot readers.
func (w *word) release(s uint32) {
	w.seq.Store(s + 2)
}

// Words are stored in geometrically growing segments (8, 16, 32, … words)
// published through atomic pointers: allocation is append-only, so a reader
// that observes the published size is guaranteed to observe the segment and
// the word's initialization without taking any lock. Segment k holds
// segMin<<k words; numSegs segments cover the whole int32 address space.
// segMin is kept small because the schedule explorer constructs a fresh
// Memory per replay: the first segment is the dominant allocation of a
// small configuration.
const (
	segMinShift = 3
	segMin      = 1 << segMinShift
	numSegs     = 29
)

// locate maps an address to its segment index and offset within it.
// Segment k starts at address segMin·(2^k − 1), so the segment index is
// derived from the position of the top bit of a/segMin + 1.
func locate(a int64) (seg, off int) {
	q := uint64(a)>>segMinShift + 1
	k := bits.Len64(q) - 1
	return k, int(a) - (segMin<<k - segMin)
}

// Memory is a simulated shared memory. All words are allocated through it,
// and all operations on it are linearizable: each operation takes effect
// atomically at a single instant.
//
// The zero value is not usable; construct with NewMemory.
type Memory struct {
	model  Model
	nprocs int
	gate   Gate
	sched  *Scheduler // gate when it is a Scheduler; enables lock elision
	wide   bool       // nprocs > 64: cached sets spill to heap bitsets

	mu       sync.Mutex                      // serializes allocation, labels, observer install
	segs     [numSegs]atomic.Pointer[[]word] // append-only word segments
	size     atomic.Int64                    // published number of allocated words
	labels   []string                        // label id → name; labels[0] = "" (unlabeled)
	labelIDs map[string]int32                // label name → id

	procs []Proc

	// obs is nil unless a tracer or a Stats collector is installed; the
	// operation fast paths check only this pointer. clock timestamps
	// observed events.
	obs   atomic.Pointer[observer]
	clock atomic.Int64

	// cost prices charged operations in simulated time (cost.go). nil means
	// the default Unit model and keeps the op paths identical to the
	// pre-seam code: like model and gate it is set during setup (see
	// SetCostModel) and read without synchronization on the hot paths.
	cost CostModel

	// ftab is the free-running wait table behind Proc.Wait (wait.go). Its
	// parked counter stays zero under a gate, which keeps the mutating
	// operations' wakeup hook to a single atomic load.
	ftab futexTable
	// waitPolicy selects adaptive (spin→yield→park) or dense-yield waiting
	// for free-running Wait calls; see SetWaitPolicy.
	waitPolicy WaitPolicy
}

// NewMemory creates a memory for nprocs processes under the given model.
// gate may be nil, in which case processes run without schedule control.
func NewMemory(model Model, nprocs int, gate Gate) *Memory {
	if model != CC && model != DSM {
		panic(fmt.Sprintf("rmr: invalid model %d", int(model)))
	}
	if nprocs <= 0 {
		panic(fmt.Sprintf("rmr: invalid process count %d", nprocs))
	}
	m := &Memory{
		model:    model,
		nprocs:   nprocs,
		wide:     nprocs > 64,
		procs:    make([]Proc, nprocs),
		labels:   []string{""},
		labelIDs: map[string]int32{"": 0},
	}
	m.SetGate(gate)
	for i := range m.procs {
		m.procs[i].m = m
		m.procs[i].id = i
	}
	return m
}

// Model reports the memory model of m.
func (m *Memory) Model() Model { return m.model }

// SetGate installs (or removes, with nil) the schedule gate. It is intended
// for test setup: perform initialization ungated, then attach the scheduler
// before launching the concurrent phase. It must not be called while any
// process is issuing operations; as a guard against the most damaging form
// of that misuse — swapping gates while the current scheduler is
// mid-schedule, which silently invalidates the step-token exclusivity the
// lock-elision paths rely on — SetGate panics when the installed gate is a
// Scheduler with an undrained schedule in progress.
func (m *Memory) SetGate(g Gate) {
	if s := m.sched; s != nil && s.active() {
		panic("rmr: SetGate while the current scheduler is mid-schedule")
	}
	m.gate = g
	m.sched, _ = g.(*Scheduler)
	if m.sched != nil {
		// Back-pointer for the visited-state reduction: the scheduler's
		// pick callback fingerprints this memory at quiescent points.
		m.sched.mem = m
	}
	// A gate takes over schedule control: release any process still parked
	// from a free-running phase (Wait no-ops under a gate, so it would
	// never re-park). The woken processes re-check their conditions.
	m.ftab.wakeAll()
}

// SetCostModel installs the cost model that prices charged operations in
// simulated time (see CostModel in cost.go). nil or Unit restores the
// default unit accounting, under which SimTime equals RMRs and the op fast
// paths are untouched. Cost is observe-only: it never changes what the
// processes do, which operations charge RMRs, or how schedules unfold.
//
// Like SetGate and SetTracer it is setup-time only — install the model
// before launching the concurrent phase. As a guard against swapping models
// mid-run it panics when the installed gate is a Scheduler with an undrained
// schedule in progress.
func (m *Memory) SetCostModel(cm CostModel) {
	if s := m.sched; s != nil && s.active() {
		panic("rmr: SetCostModel while the current scheduler is mid-schedule")
	}
	if cm == Unit {
		cm = nil
	}
	m.mu.Lock()
	m.cost = cm
	m.mu.Unlock()
}

// CostModel returns the installed cost model; the default is Unit.
func (m *Memory) CostModel() CostModel {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cost == nil {
		return Unit
	}
	return m.cost
}

// exclusive reports whether the issuing process holds exclusive access to
// the memory: a Scheduler gate serializes operations through its step
// token until it is drained open, so the operation needs no per-word lock
// and no seqlock handshake. (Draining opens the gate strictly before any
// released process runs, so a drained process always observes open and
// falls back to the locked paths.)
func (m *Memory) exclusive() bool {
	return m.sched != nil && !m.sched.open.Load()
}

// NumProcs reports the number of processes the memory was created for.
func (m *Memory) NumProcs() int { return m.nprocs }

// Proc returns the handle for process id (0 <= id < NumProcs).
func (m *Memory) Proc(id int) *Proc {
	return &m.procs[id]
}

// Alloc allocates one shared word initialized to init. In the DSM model the
// word is remote to every process; use AllocLocal for process-local words.
func (m *Memory) Alloc(init uint64) Addr {
	return m.AllocLocal(NoOwner, init)
}

// AllocLocal allocates one shared word initialized to init that is local to
// process owner in the DSM model. Ownership is ignored under CC.
func (m *Memory) AllocLocal(owner int, init uint64) Addr {
	return m.AllocNLocal(owner, 1, init)
}

// AllocN allocates n consecutive words, all initialized to init, and returns
// the address of the first. Words are remote to all processes under DSM.
func (m *Memory) AllocN(n int, init uint64) Addr {
	return m.AllocNLocal(NoOwner, n, init)
}

// AllocNLocal allocates n consecutive words local to process owner in the
// DSM model, all initialized to init, and returns the address of the first.
// The words are guaranteed adjacent, so callers may lay out multi-word
// records and address fields at fixed offsets.
//
// Allocation may run concurrently with operations on already-allocated
// words: each word is fully initialized before the new size is published,
// so lock-free readers never observe a partially constructed word.
func (m *Memory) AllocNLocal(owner, n int, init uint64) Addr {
	m.mu.Lock()
	base := m.size.Load()
	if base+int64(n) > int64(1)<<31 {
		m.mu.Unlock()
		panic(fmt.Sprintf("rmr: address space exhausted allocating %d words at %d", n, base))
	}
	for i := int64(0); i < int64(n); i++ {
		k, off := locate(base + i)
		sp := m.segs[k].Load()
		if sp == nil {
			s := make([]word, segMin<<k)
			sp = &s
			m.segs[k].Store(sp)
		}
		w := &(*sp)[off]
		w.val.Store(init)
		w.owner = int32(owner)
		if m.model == CC && m.wide {
			b := newBitset(m.nprocs)
			w.cached.spill = &b
		}
	}
	m.size.Store(base + int64(n))
	m.mu.Unlock()
	return Addr(base)
}

// Size reports the number of shared words allocated so far. It is the
// space-complexity measurement used by the Table 1 space experiment.
func (m *Memory) Size() int {
	return int(m.size.Load())
}

// Label attributes the n consecutive words starting at base to the named
// region (e.g. "tree/level2", "mcs/qnode"): trace events and Stats charge
// the words' RMRs to that label. n == 0 registers the name without labeling
// anything, which lets a structure pre-intern labels for words it will only
// allocate mid-run (so a Stats collector created before the run still has
// a column for them). Label the words right after allocating them, before
// they are shared; relabeling a word that other processes are operating on
// is atomic per word but attributes in-flight events arbitrarily.
func (m *Memory) Label(base Addr, n int, name string) {
	id := m.LabelID(name)
	for i := 0; i < n; i++ {
		m.word(base + Addr(i)).label.Store(id)
	}
}

// LabelID interns name and returns its label id (stable for the lifetime
// of the memory, assigned in first-use order starting at 1; "" is 0).
func (m *Memory) LabelID(name string) int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.labelIDs[name]; ok {
		return id
	}
	id := int32(len(m.labels))
	m.labels = append(m.labels, name)
	m.labelIDs[name] = id
	return id
}

// LabelName resolves a label id from an Event or a Stats snapshot; unknown
// ids and 0 resolve to "".
func (m *Memory) LabelName(id int32) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || int(id) >= len(m.labels) {
		return ""
	}
	return m.labels[id]
}

// Labels returns a copy of the label table, indexed by label id; index 0 is
// the unlabeled region "".
func (m *Memory) Labels() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.labels...)
}

// Peek returns the current value of a word without charging an RMR and
// without affecting coherence state. It is intended for tests and harness
// assertions only, never for algorithm code. The value is a single atomic
// load, so Peek linearizes with concurrent operations without locking.
func (m *Memory) Peek(a Addr) uint64 {
	return m.word(a).val.Load()
}

// Poke sets the value of a word without charging an RMR but invalidating all
// cached copies (so that spinning processes observe it). Like Peek it is a
// testing/harness facility, not part of the machine model. It must not run
// concurrently with operations of a gated memory's processes (in practice
// every Poke is initialization-time, before the run starts).
func (m *Memory) Poke(a Addr, v uint64) {
	w := m.word(a)
	w.mu.Lock()
	s := w.claim()
	w.val.Store(v)
	if m.model == CC {
		w.cached.clear()
	}
	w.release(s)
	w.mu.Unlock()
}

// word resolves an address without locking: the size check (an atomic load
// that acquires the allocating publication) and two dependent loads. This
// is the per-operation translation path, so it must never contend — N
// simulated processes touching N distinct words must not serialize on the
// host.
func (m *Memory) word(a Addr) *word {
	if int64(a) < 0 || int64(a) >= m.size.Load() {
		panic(fmt.Sprintf("rmr: address %d out of range [0,%d)", a, m.size.Load()))
	}
	k, off := locate(int64(a))
	return &(*m.segs[k].Load())[off]
}
