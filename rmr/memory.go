package rmr

import (
	"fmt"
	"sync"
)

// Model selects the memory model under which RMRs are counted.
type Model int

const (
	// CC is the cache-coherent model: reads of cached words are free;
	// updates invalidate other processes' copies.
	CC Model = iota + 1
	// DSM is the distributed shared-memory model: each word is local to one
	// process and remote to all others.
	DSM
)

// String returns the conventional abbreviation of the model.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case DSM:
		return "DSM"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Addr is the address of a shared word within a Memory.
type Addr int32

// NoOwner marks a word that is remote to every process in the DSM model
// (e.g. a global variable that lives in "home" memory).
const NoOwner = -1

// word is a single W-bit shared memory location together with the coherence
// bookkeeping needed to charge RMRs.
type word struct {
	mu     sync.Mutex
	val    uint64
	cached bitset // CC: set of processes holding a valid cached copy
	owner  int32  // DSM: process the word is local to, or NoOwner
}

// Memory is a simulated shared memory. All words are allocated through it,
// and all operations on it are linearizable: each operation takes effect
// atomically at a single instant.
//
// The zero value is not usable; construct with NewMemory.
type Memory struct {
	model  Model
	nprocs int
	gate   Gate

	mu    sync.Mutex
	words []*word

	procs  []*Proc
	tracer Tracer
}

// NewMemory creates a memory for nprocs processes under the given model.
// gate may be nil, in which case processes run without schedule control.
func NewMemory(model Model, nprocs int, gate Gate) *Memory {
	if model != CC && model != DSM {
		panic(fmt.Sprintf("rmr: invalid model %d", int(model)))
	}
	if nprocs <= 0 {
		panic(fmt.Sprintf("rmr: invalid process count %d", nprocs))
	}
	m := &Memory{
		model:  model,
		nprocs: nprocs,
		gate:   gate,
		procs:  make([]*Proc, nprocs),
	}
	for i := range m.procs {
		m.procs[i] = &Proc{m: m, id: i}
	}
	return m
}

// Model reports the memory model of m.
func (m *Memory) Model() Model { return m.model }

// SetGate installs (or removes, with nil) the schedule gate. It is intended
// for test setup: perform initialization ungated, then attach the scheduler
// before launching the concurrent phase. It must not be called while any
// process is issuing operations.
func (m *Memory) SetGate(g Gate) { m.gate = g }

// NumProcs reports the number of processes the memory was created for.
func (m *Memory) NumProcs() int { return m.nprocs }

// Proc returns the handle for process id (0 <= id < NumProcs).
func (m *Memory) Proc(id int) *Proc {
	return m.procs[id]
}

// Alloc allocates one shared word initialized to init. In the DSM model the
// word is remote to every process; use AllocLocal for process-local words.
func (m *Memory) Alloc(init uint64) Addr {
	return m.AllocLocal(NoOwner, init)
}

// AllocLocal allocates one shared word initialized to init that is local to
// process owner in the DSM model. Ownership is ignored under CC.
func (m *Memory) AllocLocal(owner int, init uint64) Addr {
	w := &word{val: init, owner: int32(owner)}
	if m.model == CC {
		w.cached = newBitset(m.nprocs)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.words = append(m.words, w)
	return Addr(len(m.words) - 1)
}

// AllocN allocates n consecutive words, all initialized to init, and returns
// the address of the first. Words are remote to all processes under DSM.
func (m *Memory) AllocN(n int, init uint64) Addr {
	return m.AllocNLocal(NoOwner, n, init)
}

// AllocNLocal allocates n consecutive words local to process owner in the
// DSM model, all initialized to init, and returns the address of the first.
// The words are guaranteed adjacent, so callers may lay out multi-word
// records and address fields at fixed offsets.
func (m *Memory) AllocNLocal(owner, n int, init uint64) Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	base := Addr(len(m.words))
	for i := 0; i < n; i++ {
		w := &word{val: init, owner: int32(owner)}
		if m.model == CC {
			w.cached = newBitset(m.nprocs)
		}
		m.words = append(m.words, w)
	}
	return base
}

// Size reports the number of shared words allocated so far. It is the
// space-complexity measurement used by the Table 1 space experiment.
func (m *Memory) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.words)
}

// Peek returns the current value of a word without charging an RMR and
// without affecting coherence state. It is intended for tests and harness
// assertions only, never for algorithm code.
func (m *Memory) Peek(a Addr) uint64 {
	w := m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.val
}

// Poke sets the value of a word without charging an RMR but invalidating all
// cached copies (so that spinning processes observe it). Like Peek it is a
// testing/harness facility, not part of the machine model.
func (m *Memory) Poke(a Addr, v uint64) {
	w := m.word(a)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.val = v
	if m.model == CC {
		w.cached.clear()
	}
}

func (m *Memory) word(a Addr) *word {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(a) < 0 || int(a) >= len(m.words) {
		panic(fmt.Sprintf("rmr: address %d out of range [0,%d)", a, len(m.words)))
	}
	return m.words[a]
}
