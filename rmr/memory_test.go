package rmr

import (
	"sync"
	"testing"
)

func TestCCReadCaching(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(7)
	p0, p1 := m.Proc(0), m.Proc(1)

	if got := p0.Read(a); got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
	if got := p0.RMRs(); got != 1 {
		t.Fatalf("first read RMRs = %d, want 1", got)
	}
	// Repeated reads of a cached word are free.
	for i := 0; i < 10; i++ {
		p0.Read(a)
	}
	if got := p0.RMRs(); got != 1 {
		t.Fatalf("cached re-read RMRs = %d, want 1", got)
	}
	// Another process's write invalidates the copy: next read costs 1 RMR.
	p1.Write(a, 9)
	if got := p1.RMRs(); got != 1 {
		t.Fatalf("write RMRs = %d, want 1", got)
	}
	if got := p0.Read(a); got != 9 {
		t.Fatalf("Read after write = %d, want 9", got)
	}
	if got := p0.RMRs(); got != 2 {
		t.Fatalf("post-invalidation read RMRs = %d, want 2", got)
	}
}

func TestCCWriterKeepsCopy(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(0)
	p0 := m.Proc(0)

	p0.Write(a, 5) // 1 RMR, but p0 now holds the line
	p0.Read(a)     // free
	p0.Read(a)     // free
	if got := p0.RMRs(); got != 1 {
		t.Fatalf("RMRs = %d, want 1 (reads after own write are local)", got)
	}
}

func TestCCUpdatesAlwaysCharge(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(0)
	p := m.Proc(0)

	p.Write(a, 1)
	p.Write(a, 2)
	p.FAA(a, 1)
	p.Swap(a, 10)
	if ok := p.CAS(a, 10, 11); !ok {
		t.Fatal("CAS(10, 11) should succeed")
	}
	if ok := p.CAS(a, 999, 0); ok {
		t.Fatal("CAS(999, 0) should fail")
	}
	// §2: every write, CAS, F&A (and SWAP) is an RMR, success or not.
	if got := p.RMRs(); got != 6 {
		t.Fatalf("RMRs = %d, want 6", got)
	}
	if got := m.Peek(a); got != 11 {
		t.Fatalf("final value = %d, want 11", got)
	}
}

func TestCCSpinCostBoundedByInvalidations(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(0)
	spinner, writer := m.Proc(0), m.Proc(1)

	// Spin 100 times, with the writer updating twice along the way.
	for i := 0; i < 50; i++ {
		spinner.Read(a)
	}
	writer.Write(a, 1)
	for i := 0; i < 50; i++ {
		spinner.Read(a)
	}
	writer.Write(a, 2)
	spinner.Read(a)

	// 1 initial miss + 2 invalidation misses.
	if got := spinner.RMRs(); got != 3 {
		t.Fatalf("spinner RMRs = %d, want 3", got)
	}
}

func TestDSMOwnership(t *testing.T) {
	m := NewMemory(DSM, 2, nil)
	local := m.AllocLocal(0, 0)
	global := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)

	// Owner operations are always free, even repeated writes.
	p0.Write(local, 1)
	p0.Read(local)
	p0.FAA(local, 1)
	if got := p0.RMRs(); got != 0 {
		t.Fatalf("owner RMRs = %d, want 0", got)
	}
	// Non-owner operations always cost, including repeated reads (no cache).
	p1.Read(local)
	p1.Read(local)
	if got := p1.RMRs(); got != 2 {
		t.Fatalf("non-owner RMRs = %d, want 2", got)
	}
	// A word with no owner is remote to everyone.
	p0.Read(global)
	if got := p0.RMRs(); got != 1 {
		t.Fatalf("global-word RMRs = %d, want 1", got)
	}
}

func TestFAAReturnsOldAndWraps(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(10)
	p := m.Proc(0)

	if got := p.FAA(a, 5); got != 10 {
		t.Fatalf("FAA old = %d, want 10", got)
	}
	if got := m.Peek(a); got != 15 {
		t.Fatalf("value = %d, want 15", got)
	}
	// Subtraction via two's complement.
	if got := p.FAA(a, ^uint64(0)); got != 15 {
		t.Fatalf("FAA(-1) old = %d, want 15", got)
	}
	if got := m.Peek(a); got != 14 {
		t.Fatalf("value = %d, want 14", got)
	}
}

func TestSwapReturnsOld(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(3)
	p := m.Proc(0)
	if got := p.Swap(a, 4); got != 3 {
		t.Fatalf("Swap old = %d, want 3", got)
	}
	if got := m.Peek(a); got != 4 {
		t.Fatalf("value = %d, want 4", got)
	}
}

func TestAllocN(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	base := m.AllocN(8, 42)
	p := m.Proc(0)
	for i := 0; i < 8; i++ {
		if got := p.Read(base + Addr(i)); got != 42 {
			t.Fatalf("word %d = %d, want 42", i, got)
		}
	}
	if got := m.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
}

func TestPokeInvalidates(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(0)
	p := m.Proc(0)
	p.Read(a)
	m.Poke(a, 77)
	if got := p.Read(a); got != 77 {
		t.Fatalf("Read after Poke = %d, want 77", got)
	}
	// Poke invalidated the copy, so the re-read cost an RMR (2 total).
	if got := p.RMRs(); got != 2 {
		t.Fatalf("RMRs = %d, want 2", got)
	}
}

func TestConcurrentFAAIsAtomic(t *testing.T) {
	const procs, per = 8, 1000
	m := NewMemory(CC, procs, nil)
	a := m.Alloc(0)

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := m.Proc(id)
			for j := 0; j < per; j++ {
				p.FAA(a, 1)
			}
		}(i)
	}
	wg.Wait()
	if got := m.Peek(a); got != procs*per {
		t.Fatalf("counter = %d, want %d", got, procs*per)
	}
}

func TestConcurrentCASUniqueWinner(t *testing.T) {
	const procs = 8
	m := NewMemory(CC, procs, nil)
	a := m.Alloc(0)

	wins := make(chan int, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if m.Proc(id).CAS(a, 0, uint64(id)+1) {
				wins <- id
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("CAS winners = %v, want exactly one", winners)
	}
	if got := m.Peek(a); got != uint64(winners[0])+1 {
		t.Fatalf("value = %d, want %d", got, winners[0]+1)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, tt := range []struct {
		name string
		fn   func()
	}{
		{"bad model", func() { NewMemory(Model(0), 1, nil) }},
		{"zero procs", func() { NewMemory(CC, 0, nil) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestAddressOutOfRange(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Proc(0).Read(Addr(0))
}

func TestModelString(t *testing.T) {
	if CC.String() != "CC" || DSM.String() != "DSM" {
		t.Fatalf("Model strings = %q, %q", CC.String(), DSM.String())
	}
	if got := Model(9).String(); got != "Model(9)" {
		t.Fatalf("unknown model string = %q", got)
	}
}
