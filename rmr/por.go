package rmr

import "math/bits"

// Partial-order reduction for the Explorer.
//
// Two steps of distinct processes commute unless both touch the same word
// and at least one mutates it: swapping adjacent independent steps in a
// schedule changes neither any operation's result nor the final memory
// state, so the two schedules are equivalent (they have the same
// Mazurkiewicz trace) and exploring both is pure waste. The Explorer's
// SleepSets mode uses the classical sleep-set algorithm over that
// commutation relation to explore exactly one representative path per
// trace — plus sleep-blocked cut points, counted in Result.Equivalent —
// while still visiting the lexicographically least member of every trace,
// which preserves the lexmin-violation guarantee. See docs/MODEL.md
// ("Partial-order reduction") for the independence relation and the
// soundness argument covering CC cache-invalidation effects.

// Reduction selects the Explorer's partial-order reduction mode.
type Reduction int

const (
	// NoReduction explores the full choice tree (the default): every
	// distinct choice sequence is replayed, including schedules that
	// differ only in the order of commuting steps.
	NoReduction Reduction = iota
	// SleepSets prunes schedules provably equivalent to already-explored
	// ones with sleep sets over the step-commutation relation. Explored,
	// Pruned and the lexmin-violation guarantee are then stated over
	// equivalence classes of schedules; Result.Equivalent counts the
	// replays cut at a sleep-blocked choice point. Explorations with more
	// than 64 processes fall back to NoReduction (sleep sets are pid
	// masks).
	SleepSets
)

// porMaxProcs is the largest process count SleepSets supports: sleep sets
// are uint64 pid masks.
const porMaxProcs = 64

// stepAccess is the memory footprint of one scheduled step: the word the
// operation touched and whether it mutated it (write/CAS/F&A/SWAP; failed
// CAS counts as a mutation — it still invalidates under CC and serializes
// against writers). A negative address marks a step whose footprint was
// not observed (a process released by Drain, or a Gate.Await with no
// operation behind it); unknown steps are conservatively dependent on
// everything.
type stepAccess struct {
	addr Addr
	mut  bool
}

var unknownAccess = stepAccess{addr: -1}

func (a stepAccess) known() bool { return a.addr >= 0 }

// dependent reports whether two steps of distinct processes may fail to
// commute. Distinct words always commute: under CC an update's
// invalidations are confined to the updated word's cache set, and a read's
// cache fill touches only the read word's set, so operations on different
// words never affect each other's results, RMR charges, or coherence
// state. Same-word read/read pairs commute too: each read inserts only its
// own process into the cache set, and neither changes the value.
func dependent(a, b stepAccess) bool {
	if !a.known() || !b.known() {
		return true
	}
	return a.addr == b.addr && (a.mut || b.mut)
}

// porState is the recorder's sleep-set machinery. Per-depth snapshot rows
// (sleepAt, pidAt stride nprocs, pendAt stride nprocs) describe the node
// the current schedule passes at each depth, written by the leftmost
// replay through that node; the explorer reads them to compute the sleep
// sets of sibling subtrees, which keeps sibling generation identical
// between the sequential DFS and parallel workers (the parallel task
// replay is the leftmost replay through every node it generates siblings
// for).
type porState struct {
	on     bool
	nprocs int
	acc    []stepAccess // the scheduler's per-step access log (aliased)
	cut    bool         // replay ended at a sleep-blocked choice point

	// Subtree seed, installed at the first free pick: the sleep set the
	// explorer computed for this branch.
	seedMask uint64
	seedOp   []stepAccess

	// Online state along the current schedule.
	mask    uint64       // pids currently asleep
	sleepOp []stepAccess // pending-op footprint of each sleeping pid

	pend []stepAccess // backfill scratch: next-op footprint per pid

	// Per-depth snapshots (persist across replays; see type comment).
	sleepAt []uint64     // sleep mask at the node, after wake-filtering
	pidAt   []int32      // waiting pids at the node, by choice index
	pendAt  []stepAccess // next-op footprint from the node, by pid
}

// porPick is the reduction-aware PickFunc body: forced below the prefix,
// and above it the leftmost waiting process not in the sleep set. It
// returns -1 — cutting the schedule — when every waiting process is
// asleep: all continuations from such a node are equivalent to schedules
// explored elsewhere.
func (r *recorder) porPick(step int, waiting []int) int {
	p := &r.por
	v := &r.vis
	r.ensureDepth(step)
	base := step * p.nprocs
	for i, pid := range waiting {
		p.pidAt[base+i] = int32(pid)
	}
	if v.sym {
		v.ensureDepth(step, false)
		v.grantedAt[step] = v.granted
	}
	if step < len(r.prefix) {
		choice := r.prefix[step]
		if choice >= len(waiting) {
			panic(badPrefix(step, choice, len(waiting)))
		}
		r.record(choice, waiting)
		return choice
	}
	if step == len(r.prefix) {
		// Entering the subtree root: install the sleep set the explorer
		// computed for this branch. It is already filtered against the
		// branch op at step-1, so no wake pass is needed here.
		p.mask = p.seedMask
		copy(p.sleepOp, p.seedOp)
	} else if p.mask != 0 {
		// The op at step-1 may conflict with a sleeping process's pending
		// op; waking every dependent sleeper keeps the deferral sound (its
		// interleavings are no longer covered by the explored sibling).
		a := p.acc[step-1]
		for q := p.mask; q != 0; q &= q - 1 {
			pid := bits.TrailingZeros64(q)
			if dependent(p.sleepOp[pid], a) {
				p.mask &^= 1 << uint(pid)
			}
		}
	}
	p.sleepAt[step] = p.mask
	// Visited check after the wake filter so the fingerprint keys on the
	// effective sleep set; forced steps above never reach here, so subtree
	// roots replayed from ancestor cuts are not re-checked against keys
	// their own ancestors inserted.
	if v.on && v.seen(step, p.mask, waiting) {
		v.vcut = true
		return -1
	}
	var wm uint64
	if v.sym {
		for _, pid := range waiting {
			wm |= 1 << uint(pid)
		}
	}
	symHit := false
	for i, pid := range waiting {
		if p.mask&(1<<uint(pid)) != 0 {
			continue
		}
		if step == 0 && !v.ownsRoot(i) {
			continue
		}
		if v.sym && v.symBlocked(pid, v.granted, wm) {
			symHit = true
			continue
		}
		r.record(i, waiting)
		return i
	}
	// Classify the cut: a symmetry block anywhere makes it a symmetry cut
	// (a canonical representative covers this node); otherwise an unowned
	// root is the shard filter (the root sleep seed is empty, so only
	// sharding can empty the root scan); everything else is a sleep cut.
	switch {
	case symHit:
		v.scut = true
	case step == 0 && v.shardCount > 0:
		v.shardSkip = true
	default:
		p.cut = true
	}
	return -1
}

// backfill fills the per-depth pending-op snapshots for the free depths of
// the schedule just replayed. A waiting process's next operation is fixed
// while it waits (its address argument is evaluated before the gate call),
// so the access observed at its next grant is its pending-op footprint at
// every earlier node along the path; a backward scan recovers all of them
// in one pass. Depths below the forced prefix keep the rows written by the
// replay that created those nodes.
func (r *recorder) backfill() {
	p := &r.por
	for i := range p.pend {
		p.pend[i] = unknownAccess
	}
	for d := len(r.taken) - 1; d >= len(r.prefix); d-- {
		base := d * p.nprocs
		pid := p.pidAt[base+r.taken[d]]
		p.pend[pid] = p.acc[d]
		copy(p.pendAt[base:base+p.nprocs], p.pend)
	}
}

// asleep reports whether the choice-c sibling at depth d is in that node's
// sleep set, in which case its subtree must not be explored.
func (r *recorder) asleep(d, c int) bool {
	p := &r.por
	return p.sleepAt[d]&(1<<uint(p.pidAt[d*p.nprocs+c])) != 0
}

// childSleep computes the sleep set of the sibling subtree branching off
// the current schedule at depth d with choice c: a process sleeps there
// when it is already asleep at the node, or is an earlier-ordered sibling
// (whose subtree covers the interleavings that run it first), and its
// pending op commutes with the branch op. Footprints of the sleepers are
// written into dst, indexed by pid; unknown footprints are conservatively
// treated as conflicting and excluded.
func (r *recorder) childSleep(d, c int, dst []stepAccess) uint64 {
	p := &r.por
	base := d * p.nprocs
	t := int(p.pidAt[base+c])
	op := p.pendAt[base+t]
	if !op.known() {
		return 0
	}
	cand := p.sleepAt[d]
	for i := 0; i < c; i++ {
		cand |= 1 << uint(p.pidAt[base+i])
	}
	cand &^= 1 << uint(t)
	var mask uint64
	for q := cand; q != 0; q &= q - 1 {
		pid := bits.TrailingZeros64(q)
		if qop := p.pendAt[base+pid]; qop.known() && !dependent(qop, op) {
			mask |= 1 << uint(pid)
			dst[pid] = qop
		}
	}
	return mask
}

// ensureDepth grows the per-depth snapshot rows to cover depth step.
// newReplayer pre-sizes them to the step bound (capped at the same hint as
// the choice log), so steady-state replays never grow here.
func (r *recorder) ensureDepth(step int) {
	p := &r.por
	if step < len(p.sleepAt) {
		return
	}
	for len(p.sleepAt) <= step {
		p.sleepAt = append(p.sleepAt, 0)
		for i := 0; i < p.nprocs; i++ {
			p.pidAt = append(p.pidAt, -1)
			p.pendAt = append(p.pendAt, unknownAccess)
		}
	}
}
