package rmr

// Substrate microbenchmarks. Every experiment in the repository is built on
// two hot paths — Proc's operation path (BenchmarkMemOps) and the
// Explorer's schedule replay loop (BenchmarkExplorerThroughput) — so their
// throughput bounds how large a configuration any experiment can afford.
// scripts/bench.sh runs exactly these and records the results in
// BENCH_rmr.json so the trajectory is diffable across PRs.

import (
	"fmt"
	"sync"
	"testing"
)

// benchMemOps hammers the operation path with 8 free-running processes:
// each process mostly spins on its own word (cached under CC, local under
// DSM) with periodic updates and one shared F&A — the access mix of a queue
// lock. The reported ops/s metric aggregates all processes.
func benchMemOps(b *testing.B, model Model) {
	benchMemOpsCost(b, model, nil)
}

// benchMemOpsCost is benchMemOps with a cost model installed; nil leaves
// the default Unit accounting (the exact pre-seam configuration).
func benchMemOpsCost(b *testing.B, model Model, cm CostModel) {
	const procs = 8
	m := NewMemory(model, procs, nil)
	shared := m.Alloc(0)
	var spin [procs]Addr
	for i := range spin {
		spin[i] = m.AllocLocal(i, 0)
	}
	if cm != nil {
		m.SetCostModel(cm)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := m.Proc(id)
			a := spin[id]
			for j := 0; j < b.N; j++ {
				switch j & 7 {
				case 0:
					p.FAA(shared, 1)
				case 1:
					p.CAS(a, 0, 1)
				case 2:
					p.Write(a, uint64(j))
				default:
					p.Read(a)
				}
			}
		}(i)
	}
	wg.Wait()
	b.ReportMetric(float64(procs)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

func BenchmarkMemOps(b *testing.B) {
	b.Run("CC/procs=8", func(b *testing.B) { benchMemOps(b, CC) })
	b.Run("DSM/procs=8", func(b *testing.B) { benchMemOps(b, DSM) })
}

// BenchmarkCostModelMemOps measures the cost-model seam's overhead against
// BenchmarkMemOps' configuration: cost=unit is the seam's fast path (a nil
// model pointer, expected within noise of BenchmarkMemOps itself) and the
// sampling models add one hash + table lookup per charged op. Named so that
// scripts/bench.sh's 'BenchmarkMemOps' pattern does not pick it up — it is
// an overhead guard, not a trajectory benchmark.
func BenchmarkCostModelMemOps(b *testing.B) {
	for _, name := range []string{"unit", "ccnuma", "dsmremote"} {
		cm, err := NewCostModel(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("cost="+name+"/CC/procs=8", func(b *testing.B) { benchMemOpsCost(b, CC, cm) })
		b.Run("cost="+name+"/DSM/procs=8", func(b *testing.B) { benchMemOpsCost(b, DSM, cm) })
	}
}

// spinLockBody is a 3-process CAS spin-lock body: each process acquires,
// bumps a counter, releases. It is the Explorer workload: small enough that
// a bounded tree is explored in milliseconds, real enough (spin loop +
// critical section) that replay cost matches the E8 property tests.
func spinLockBody(s *Scheduler, maxSteps int) error {
	const procs = 3
	m := NewMemory(CC, procs, s)
	lock := m.Alloc(0)
	count := m.Alloc(0)
	for i := 0; i < procs; i++ {
		p := m.Proc(i)
		s.GoProc(i, func() {
			for !p.CAS(lock, 0, 1) {
				if p.AbortSignal() {
					return
				}
			}
			p.FAA(count, 1)
			p.Write(lock, 0)
		})
	}
	if err := s.Run(maxSteps); err != nil {
		for i := 0; i < procs; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return err
	}
	if got := m.Peek(count); got != procs {
		return fmt.Errorf("count = %d, want %d", got, procs)
	}
	return nil
}

// mixedLockBody is the E8-shaped explorer workload: two test-and-test-
// and-set contenders plus one process that only touches its own words —
// the structure of the harness's abort-signal process, over a lock that
// spins on reads like the paper's algorithms do. The full choice tree
// multiplies the contention tree by every placement of the independent
// process's steps and every interleaving of the commuting read spins;
// partial-order reduction collapses both, which is where its leverage on
// the property suites comes from.
func mixedLockBody(s *Scheduler, maxSteps int) error {
	const procs = 3
	const sideOps = 5
	m := NewMemory(CC, procs, s)
	lock := m.Alloc(0)
	count := m.Alloc(0)
	side := m.AllocN(sideOps, 0)
	for i := 0; i < 2; i++ {
		p := m.Proc(i)
		s.GoProc(i, func() {
			for {
				if p.Read(lock) == 0 && p.CAS(lock, 0, 1) {
					break
				}
				if p.AbortSignal() {
					return
				}
			}
			p.FAA(count, 1)
			p.Write(lock, 0)
		})
	}
	p := m.Proc(2)
	s.GoProc(2, func() {
		for j := 0; j < sideOps; j++ {
			p.Write(side+Addr(j), uint64(j)+1)
		}
	})
	if err := s.Run(maxSteps); err != nil {
		for i := 0; i < procs; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return err
	}
	if got := m.Peek(count); got != 2 {
		return fmt.Errorf("count = %d, want 2", got)
	}
	return nil
}

// BenchmarkExplorerThroughput measures bounded-exhaustive exploration on
// the E8-shaped 3-process body, per worker count and reduction mode. Every
// variant exhausts the same uncapped tree, so ns/op is the wall-clock to
// cover it and the por=on / por=off ratio is the reduction's effective
// speedup; replays/s is the raw replay rate.
func BenchmarkExplorerThroughput(b *testing.B) {
	const maxSteps = 13
	for _, reduction := range []Reduction{NoReduction, SleepSets} {
		por := "off"
		if reduction == SleepSets {
			por = "on"
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("por=%s/Workers=%d", por, workers), func(b *testing.B) {
				var res Result
				for i := 0; i < b.N; i++ {
					e := &Explorer{MaxSteps: maxSteps, Workers: workers, Reduction: reduction}
					var err error
					res, err = e.Run(3, mixedLockBody)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Exhausted {
						b.Fatal("tree not exhausted")
					}
				}
				b.ReportMetric(float64(res.Replays())*float64(b.N)/b.Elapsed().Seconds(), "replays/s")
				b.ReportMetric(float64(res.Explored), "explored")
				b.ReportMetric(float64(res.Equivalent), "equivalent")
			})
		}
	}
}
