package rmr

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"sublock/internal/promtext"
)

// numPassageBuckets sizes the passage-cost histogram: bucket 0 counts
// zero-RMR passages and bucket b ≥ 1 counts passages whose RMR cost lies
// in [2^(b-1), 2^b); the last bucket absorbs everything beyond.
const numPassageBuckets = 16

// numSimBuckets sizes the passage simulated-latency histogram the same way
// but in simulated nanoseconds, whose range is far wider than RMR counts
// (a DSM-remote passage easily costs 10^5 ns): 48 log2 buckets cover
// anything a realistic model can produce.
const numSimBuckets = 48

// Stats accumulates the observability counter matrix of one Memory:
// operation counts, RMR charges, cache hits, and invalidations, each
// broken down by process × passage phase × address label, plus a
// per-passage RMR-cost histogram driven by Proc.EnterPhase transitions.
//
// Build with NewStats and install with Memory.SetStats; while installed,
// every operation takes the memory's observed (mutex) path, so collection
// costs throughput but perturbs no RMR counts and no schedule. The label
// dimension is frozen at construction: words labeled after NewStats are
// attributed to the unlabeled column (pre-intern such labels with
// Memory.Label(0, 0, name) before constructing the Stats).
//
// All counters are atomic: Snapshot may be taken at any time and is
// internally consistent per counter, though a snapshot taken mid-run may
// split an operation's facets across two snapshots.
type Stats struct {
	m       *Memory
	nprocs  int
	nlabels int
	cells   []statsCell // [proc][phase][label], row-major

	completed atomic.Int64 // passages that returned to idle without aborting
	aborted   atomic.Int64 // passages that visited PhaseAbort
	histSum   atomic.Int64 // total RMRs across finished passages
	hist      [numPassageBuckets]atomic.Int64
	simSum    atomic.Int64 // total simulated time across finished passages
	simHist   [numSimBuckets]atomic.Int64

	// inPassage tracks each process's open passage. Only the owning
	// goroutine touches its entry (from EnterPhase), and Snapshot does not
	// read it, so the fields need no atomics.
	inPassage []passageState
}

type statsCell struct {
	ops    [5]atomic.Int64 // indexed by Op-1: read, write, cas, faa, swap
	rmrs   atomic.Int64
	hits   atomic.Int64
	invals atomic.Int64
	simns  atomic.Int64 // simulated time under the memory's cost model
}

type passageState struct {
	active   bool
	aborted  bool
	start    int64 // Proc.RMRs at passage start
	startSim int64 // Proc.SimTime at passage start
}

// NewStats creates a collector for m, sized to its process count and the
// labels interned so far.
func NewStats(m *Memory) *Stats {
	labels := m.Labels()
	return &Stats{
		m:         m,
		nprocs:    m.nprocs,
		nlabels:   len(labels),
		cells:     make([]statsCell, m.nprocs*NumPhases*len(labels)),
		inPassage: make([]passageState, m.nprocs),
	}
}

// record accounts one observed operation. Called from the operation slow
// path with the word lock held; distinct words record concurrently.
func (st *Stats) record(pid int, ph Phase, label int32, op Op, rmr bool, cost int64, hit bool, invals int) {
	if label < 0 || int(label) >= st.nlabels {
		label = 0
	}
	if ph < 0 || ph >= NumPhases {
		ph = PhaseIdle
	}
	c := &st.cells[(pid*NumPhases+int(ph))*st.nlabels+int(label)]
	if op >= OpRead && op <= OpSwap {
		c.ops[op-1].Add(1)
	}
	if rmr {
		c.rmrs.Add(1)
	}
	if cost > 0 {
		c.simns.Add(cost)
	}
	if hit {
		c.hits.Add(1)
	}
	if invals > 0 {
		c.invals.Add(int64(invals))
	}
}

// phaseChange maintains passage accounting: a passage opens on the first
// transition out of PhaseIdle, is marked aborted if it visits PhaseAbort,
// and closes — contributing its RMR delta to the cost histogram — on the
// transition back to PhaseIdle.
func (st *Stats) phaseChange(p *Proc, old, new Phase) {
	ps := &st.inPassage[p.id]
	switch {
	case !ps.active && old == PhaseIdle && new != PhaseIdle:
		ps.active, ps.aborted = true, false
		ps.start, ps.startSim = p.rmrs.Load(), p.SimTime()
	case new == PhaseAbort:
		ps.aborted = true
	case new == PhaseIdle && ps.active:
		cost := p.rmrs.Load() - ps.start
		b := bits.Len64(uint64(cost))
		if b >= numPassageBuckets {
			b = numPassageBuckets - 1
		}
		st.hist[b].Add(1)
		st.histSum.Add(cost)
		sim := p.SimTime() - ps.startSim
		sb := bits.Len64(uint64(sim))
		if sb >= numSimBuckets {
			sb = numSimBuckets - 1
		}
		st.simHist[sb].Add(1)
		st.simSum.Add(sim)
		if ps.aborted {
			st.aborted.Add(1)
		} else {
			st.completed.Add(1)
		}
		ps.active = false
	}
}

// Cell is one entry of a Snapshot's counter matrix.
type Cell struct {
	Ops    [5]int64 // operation counts indexed by Op-1: read, write, cas, faa, swap
	RMRs   int64    // operations charged as remote
	Hits   int64    // CC: reads/updates finding a valid cached copy; DSM: local-word accesses
	Invals int64    // CC only: cached copies invalidated by updates
	SimNS  int64    // simulated time under the cost model (ticks under Unit)
}

func (c *Cell) add(o *Cell) {
	for i := range c.Ops {
		c.Ops[i] += o.Ops[i]
	}
	c.RMRs += o.RMRs
	c.Hits += o.Hits
	c.Invals += o.Invals
	c.SimNS += o.SimNS
}

func (c *Cell) zero() bool {
	var z Cell
	return *c == z
}

// Snapshot is a point-in-time copy of a Stats collector, safe to read and
// aggregate without synchronization.
type Snapshot struct {
	Model  Model
	Procs  int
	Labels []string // label id → name; Labels[0] = "" (unlabeled)
	// Cost names the memory's cost model at snapshot time ("unit" unless a
	// model was installed with Memory.SetCostModel); simulated-time fields
	// below are in its units (ns for the built-in non-unit models).
	Cost string

	// Passage accounting (driven by Proc.EnterPhase).
	Passages        int64 // finished passages that did not abort
	AbortedPassages int64
	PassageRMRSum   int64   // total RMRs across finished passages
	PassageHist     []int64 // bucket 0: zero-cost; bucket b: cost in [2^(b-1), 2^b)
	PassageSimSum   int64   // total simulated time across finished passages
	PassageSimHist  []int64 // same bucketing as PassageHist, in sim time

	cells []Cell
}

// Snapshot copies the current counters.
func (st *Stats) Snapshot() *Snapshot {
	s := &Snapshot{
		Model:           st.m.model,
		Procs:           st.nprocs,
		Labels:          st.m.Labels()[:st.nlabels],
		Cost:            st.m.CostModel().Name(),
		Passages:        st.completed.Load(),
		AbortedPassages: st.aborted.Load(),
		PassageRMRSum:   st.histSum.Load(),
		PassageHist:     make([]int64, numPassageBuckets),
		PassageSimSum:   st.simSum.Load(),
		PassageSimHist:  make([]int64, numSimBuckets),
		cells:           make([]Cell, len(st.cells)),
	}
	for i := range st.hist {
		s.PassageHist[i] = st.hist[i].Load()
	}
	for i := range st.simHist {
		s.PassageSimHist[i] = st.simHist[i].Load()
	}
	for i := range st.cells {
		c := &st.cells[i]
		d := &s.cells[i]
		for k := range c.ops {
			d.Ops[k] = c.ops[k].Load()
		}
		d.RMRs = c.rmrs.Load()
		d.Hits = c.hits.Load()
		d.Invals = c.invals.Load()
		d.SimNS = c.simns.Load()
	}
	return s
}

// Cell returns the counters for one (process, phase, label) coordinate.
func (s *Snapshot) Cell(proc int, ph Phase, label int32) Cell {
	return s.cells[(proc*NumPhases+int(ph))*len(s.Labels)+int(label)]
}

// ProcPhaseRMRs sums the RMRs process proc incurred in phase ph.
func (s *Snapshot) ProcPhaseRMRs(proc int, ph Phase) int64 {
	var n int64
	for l := range s.Labels {
		n += s.Cell(proc, ph, int32(l)).RMRs
	}
	return n
}

// PhaseRMRs sums the RMRs all processes incurred in phase ph.
func (s *Snapshot) PhaseRMRs(ph Phase) int64 {
	var n int64
	for p := 0; p < s.Procs; p++ {
		n += s.ProcPhaseRMRs(p, ph)
	}
	return n
}

// LabelRMRs sums the RMRs charged to words labeled name across all
// processes and phases; name "" selects the unlabeled region.
func (s *Snapshot) LabelRMRs(name string) int64 {
	var n int64
	for l, ln := range s.Labels {
		if ln != name {
			continue
		}
		for p := 0; p < s.Procs; p++ {
			for ph := Phase(0); ph < NumPhases; ph++ {
				n += s.Cell(p, ph, int32(l)).RMRs
			}
		}
	}
	return n
}

// ProcPhaseLabelRMRs sums the RMRs process proc incurred in phase ph on
// words whose label name has the given prefix (e.g. "tree/" for all tree
// levels).
func (s *Snapshot) ProcPhaseLabelRMRs(proc int, ph Phase, prefix string) int64 {
	var n int64
	for l, ln := range s.Labels {
		if strings.HasPrefix(ln, prefix) {
			n += s.Cell(proc, ph, int32(l)).RMRs
		}
	}
	return n
}

// ProcPhaseSimNS sums the simulated time process proc accrued in phase ph.
func (s *Snapshot) ProcPhaseSimNS(proc int, ph Phase) int64 {
	var n int64
	for l := range s.Labels {
		n += s.Cell(proc, ph, int32(l)).SimNS
	}
	return n
}

// PhaseSimNS sums the simulated time all processes accrued in phase ph.
func (s *Snapshot) PhaseSimNS(ph Phase) int64 {
	var n int64
	for p := 0; p < s.Procs; p++ {
		n += s.ProcPhaseSimNS(p, ph)
	}
	return n
}

// LabelSimNS sums the simulated time charged to words labeled name across
// all processes and phases; name "" selects the unlabeled region.
func (s *Snapshot) LabelSimNS(name string) int64 {
	var n int64
	for l, ln := range s.Labels {
		if ln != name {
			continue
		}
		for p := 0; p < s.Procs; p++ {
			for ph := Phase(0); ph < NumPhases; ph++ {
				n += s.Cell(p, ph, int32(l)).SimNS
			}
		}
	}
	return n
}

// PassageSimQuantile estimates the q-quantile (0 < q ≤ 1) of per-passage
// simulated latency from the log2 histogram, returning the upper bound of
// the bucket holding the nearest-rank passage (so the estimate is exact for
// zero-cost passages and within 2× otherwise; harnesses that need exact
// percentiles snapshot Proc.SimTime per passage instead).
func (s *Snapshot) PassageSimQuantile(q float64) int64 {
	var total int64
	for _, n := range s.PassageSimHist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, n := range s.PassageSimHist {
		cum += n
		if cum >= rank {
			if b == 0 {
				return 0
			}
			return 1<<b - 1
		}
	}
	return 1<<len(s.PassageSimHist) - 1
}

// Total aggregates every cell.
func (s *Snapshot) Total() Cell {
	var t Cell
	for i := range s.cells {
		t.add(&s.cells[i])
	}
	return t
}

// TotalRMRs sums RMRs over every cell.
func (s *Snapshot) TotalRMRs() int64 { return s.Total().RMRs }

// TotalSimNS sums simulated time over every cell.
func (s *Snapshot) TotalSimNS() int64 { return s.Total().SimNS }

var opNames = [5]string{"read", "write", "cas", "faa", "swap"}

func labelDisplay(name string) string {
	if name == "" {
		return "(unlabeled)"
	}
	return name
}

// WriteText writes a human-readable report: passage accounting, the
// per-phase and per-label RMR breakdowns, the per-process phase matrix,
// and the aggregate op mix and cache behavior. Output is deterministic.
func (s *Snapshot) WriteText(w io.Writer) error {
	tw := &errWriter{w: w}
	t := s.Total()
	tw.printf("rmr stats: model=%v procs=%d labels=%d cost=%s\n", s.Model, s.Procs, len(s.Labels), s.Cost)
	tw.printf("ops: read=%d write=%d cas=%d faa=%d swap=%d  rmrs=%d hits=%d invalidations=%d\n",
		t.Ops[0], t.Ops[1], t.Ops[2], t.Ops[3], t.Ops[4], t.RMRs, t.Hits, t.Invals)
	tw.printf("passages: completed=%d aborted=%d rmr-sum=%d\n", s.Passages, s.AbortedPassages, s.PassageRMRSum)
	if s.Passages+s.AbortedPassages > 0 {
		tw.printf("simulated passage latency (cost=%s): sum=%d p50≤%d p95≤%d p99≤%d\n",
			s.Cost, s.PassageSimSum,
			s.PassageSimQuantile(0.50), s.PassageSimQuantile(0.95), s.PassageSimQuantile(0.99))
	}
	if s.Passages+s.AbortedPassages > 0 {
		tw.printf("passage cost histogram (rmrs):")
		for b, n := range s.PassageHist {
			if n == 0 {
				continue
			}
			lo, hi := int64(0), int64(0)
			if b > 0 {
				lo, hi = 1<<(b-1), 1<<b-1
			}
			if b == numPassageBuckets-1 {
				tw.printf(" [%d,∞)=%d", lo, n)
			} else if lo == hi {
				tw.printf(" %d=%d", lo, n)
			} else {
				tw.printf(" [%d,%d]=%d", lo, hi, n)
			}
		}
		tw.printf("\n")
	}
	tw.printf("per-phase RMRs (all processes):")
	for ph := Phase(0); ph < NumPhases; ph++ {
		tw.printf(" %v=%d", ph, s.PhaseRMRs(ph))
	}
	tw.printf("\n")
	tw.printf("per-phase simulated time (cost=%s):", s.Cost)
	for ph := Phase(0); ph < NumPhases; ph++ {
		tw.printf(" %v=%d", ph, s.PhaseSimNS(ph))
	}
	tw.printf("\n")
	tw.printf("per-label RMRs (all processes):\n")
	for l, name := range s.Labels {
		n := s.LabelRMRs(name)
		if n == 0 && l > 0 {
			continue
		}
		tw.printf("  %-24s %d\n", labelDisplay(name), n)
	}
	tw.printf("per-process per-phase RMRs:\n")
	tw.printf("  %-5s", "proc")
	for ph := Phase(0); ph < NumPhases; ph++ {
		tw.printf(" %8v", ph)
	}
	tw.printf(" %8s\n", "total")
	for p := 0; p < s.Procs; p++ {
		var total int64
		row := make([]int64, NumPhases)
		for ph := Phase(0); ph < NumPhases; ph++ {
			row[ph] = s.ProcPhaseRMRs(p, ph)
			total += row[ph]
		}
		if total == 0 {
			continue
		}
		tw.printf("  p%-4d", p)
		for _, n := range row {
			tw.printf(" %8d", n)
		}
		tw.printf(" %8d\n", total)
	}
	return tw.err
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4, via the shared internal/promtext writer also used
// by the native abortable/obs endpoint): rmr_ops_total, rmr_remote_total,
// rmr_cache_hits_total, rmr_invalidations_total (each by proc, phase,
// label, and — for ops — kind), rmr_sim_time_ns_total (by proc, phase,
// label, and cost model), rmr_passages_total by result, and the
// rmr_passage_cost_rmrs and rmr_passage_sim_ns histograms. All-zero series
// are omitted and series order is deterministic.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	pw := promtext.NewWriter(w)
	cellLabels := func(p int, ph Phase, l int32) []promtext.Label {
		return []promtext.Label{
			{Name: "proc", Value: fmt.Sprintf("%d", p)},
			{Name: "phase", Value: ph.String()},
			{Name: "label", Value: labelDisplay(s.Labels[l])},
		}
	}
	pw.Metric("rmr_ops_total", "Shared-memory operations by process, phase, label, and kind.", "counter")
	s.eachCell(func(p int, ph Phase, l int32, c Cell) {
		for k, n := range c.Ops {
			if n != 0 {
				pw.Sample("rmr_ops_total",
					append(cellLabels(p, ph, l), promtext.Label{Name: "op", Value: opNames[k]}), n)
			}
		}
	})
	for _, mf := range []struct {
		name, help string
		get        func(Cell) int64
	}{
		{"rmr_remote_total", "Operations charged as remote memory references.", func(c Cell) int64 { return c.RMRs }},
		{"rmr_cache_hits_total", "Accesses satisfied locally (CC: valid cached copy; DSM: local word).", func(c Cell) int64 { return c.Hits }},
		{"rmr_invalidations_total", "Cached copies invalidated by updates (CC only).", func(c Cell) int64 { return c.Invals }},
	} {
		pw.Metric(mf.name, mf.help, "counter")
		s.eachCell(func(p int, ph Phase, l int32, c Cell) {
			if n := mf.get(c); n != 0 {
				pw.Sample(mf.name, cellLabels(p, ph, l), n)
			}
		})
	}
	pw.Metric("rmr_sim_time_ns_total", "Simulated time accrued under the cost model (ticks under unit).", "counter")
	s.eachCell(func(p int, ph Phase, l int32, c Cell) {
		if c.SimNS != 0 {
			pw.Sample("rmr_sim_time_ns_total",
				append(cellLabels(p, ph, l), promtext.Label{Name: "cost", Value: s.Cost}), c.SimNS)
		}
	})
	pw.Metric("rmr_passages_total", "Finished lock passages by result.", "counter")
	pw.Sample("rmr_passages_total", []promtext.Label{{Name: "result", Value: "completed"}}, s.Passages)
	pw.Sample("rmr_passages_total", []promtext.Label{{Name: "result", Value: "aborted"}}, s.AbortedPassages)
	pw.Metric("rmr_passage_cost_rmrs", "RMRs incurred per finished passage.", "histogram")
	buckets := make([]promtext.Bucket, 0, numPassageBuckets)
	var cum int64
	for b := 0; b < numPassageBuckets-1; b++ {
		cum += s.PassageHist[b]
		buckets = append(buckets, promtext.Bucket{LE: fmt.Sprintf("%d", int64(1)<<b-1), Cum: cum})
	}
	cum += s.PassageHist[numPassageBuckets-1]
	buckets = append(buckets, promtext.Bucket{LE: "+Inf", Cum: cum})
	pw.Histogram("rmr_passage_cost_rmrs", nil, buckets, s.PassageRMRSum)
	pw.Metric("rmr_passage_sim_ns", "Simulated time per finished passage under the cost model.", "histogram")
	// Emit log2 buckets only up to the last populated one — cumulative
	// counts stay valid with +Inf closing the series — so the exposition
	// does not carry ~40 empty tail buckets per scrape.
	lastSim := 0
	for b, n := range s.PassageSimHist {
		if n != 0 {
			lastSim = b
		}
	}
	simBuckets := make([]promtext.Bucket, 0, lastSim+2)
	var simCum int64
	for b := 0; b <= lastSim; b++ {
		simCum += s.PassageSimHist[b]
		simBuckets = append(simBuckets, promtext.Bucket{LE: fmt.Sprintf("%d", int64(1)<<b-1), Cum: simCum})
	}
	for b := lastSim + 1; b < numSimBuckets; b++ {
		simCum += s.PassageSimHist[b]
	}
	simBuckets = append(simBuckets, promtext.Bucket{LE: "+Inf", Cum: simCum})
	pw.Histogram("rmr_passage_sim_ns", []promtext.Label{{Name: "cost", Value: s.Cost}}, simBuckets, s.PassageSimSum)
	return pw.Err()
}

// eachCell visits the non-zero cells in deterministic (proc, phase, label)
// order, with labels ordered by name within each (proc, phase) so that
// exposition output is stable regardless of interning order.
func (s *Snapshot) eachCell(fn func(p int, ph Phase, l int32, c Cell)) {
	byName := make([]int32, len(s.Labels))
	for i := range byName {
		byName[i] = int32(i)
	}
	sort.Slice(byName, func(i, j int) bool { return s.Labels[byName[i]] < s.Labels[byName[j]] })
	for p := 0; p < s.Procs; p++ {
		for ph := Phase(0); ph < NumPhases; ph++ {
			for _, l := range byName {
				c := s.Cell(p, ph, l)
				if !c.zero() {
					fn(p, ph, l, c)
				}
			}
		}
	}
}

// errWriter folds fmt errors so report writers can stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}
