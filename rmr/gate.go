package rmr

import (
	"errors"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Gate serializes shared-memory steps. Before every shared-memory operation
// a process calls Await with its id and blocks until the gate grants it the
// step. Gates turn concurrent executions into explicit interleavings, making
// failures reproducible and adversarial schedules expressible.
type Gate interface {
	Await(pid int)
}

// ErrStepLimit is returned by Scheduler.Run when the schedule exceeds the
// step budget, which usually indicates a liveness bug (or a workload that
// needs a larger budget).
var ErrStepLimit = errors.New("rmr: scheduler step limit exceeded")

// PickFunc selects which waiting process takes the next step. It receives
// the global step number and the ids of all processes currently waiting at
// the gate — sorted by process id, so that a choice index denotes the same
// process in every run that made the same prior choices (the property the
// Explorer's replay soundness rests on) — and returns an index into that
// slice. Returning a negative index declines to schedule anything: the run
// ends as if the step budget were exhausted (Run returns ErrStepLimit, and
// the caller drains as usual). The Explorer's partial-order reduction uses
// this to cut schedules whose continuations are all equivalent to
// schedules explored elsewhere.
type PickFunc func(step int, waiting []int) int

// RandomPick returns a PickFunc that chooses uniformly at random with the
// given seed. The same seed always reproduces the same schedule for the
// same program.
func RandomPick(seed int64) PickFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(_ int, waiting []int) int {
		return rng.Intn(len(waiting))
	}
}

// RoundRobinPick returns a PickFunc that cycles through process ids,
// granting the lowest-id waiting process that is strictly greater than the
// last scheduled id, wrapping around when none is.
func RoundRobinPick() PickFunc {
	last := -1
	return func(_ int, waiting []int) int {
		best, bestWrap := -1, -1
		for i, pid := range waiting {
			if pid > last && (best == -1 || pid < waiting[best]) {
				best = i
			}
			if bestWrap == -1 || pid < waiting[bestWrap] {
				bestWrap = i
			}
		}
		if best == -1 {
			best = bestWrap
		}
		last = waiting[best]
		return best
	}
}

// PreferPick returns a PickFunc that always grants a process from preferred
// when one is waiting, falling back to fallback otherwise. It is the
// building block for adversarial schedules ("run the aborter until it is
// stuck, then let the exiter proceed").
func PreferPick(preferred []int, fallback PickFunc) PickFunc {
	pref := make(map[int]bool, len(preferred))
	for _, pid := range preferred {
		pref[pid] = true
	}
	return func(step int, waiting []int) int {
		for i, pid := range waiting {
			if pref[pid] {
				return i
			}
		}
		return fallback(step, waiting)
	}
}

// Scheduler is a Gate driven by a PickFunc. Typical use:
//
//	s := rmr.NewScheduler(n, rmr.RandomPick(seed))
//	m := rmr.NewMemory(rmr.CC, n, s)
//	for i := 0; i < n; i++ { s.Go(func() { body(m.Proc(i)) }) }
//	err := s.Run(maxSteps)
//
// Run drives the interleaving until every process launched with Go has
// returned, or the step budget is exhausted.
//
// Steps are granted by direct handoff: a process that blocks at the gate
// (or returns) observes that it was the last one running, consults the
// PickFunc, and wakes the chosen process itself — one goroutine switch per
// step, and none at all when a process grants itself the next step. The
// schedule is identical to a central-arbiter implementation: a pick happens
// exactly at the quiescent points where every live process is blocked, over
// the id-sorted waiting set.
type Scheduler struct {
	pick  PickFunc
	grant []chan struct{}
	open  atomic.Bool
	kill  atomic.Bool  // DrainKill: unwind drained processes at their next operation
	clock atomic.Int64 // steps granted so far; see Steps

	// spawn, when non-nil, launches process functions instead of the go
	// statement. The Explorer points it at a goroutine pool so that replays
	// reuse process goroutines instead of spawning fresh ones. The launched
	// goroutine must call s.runProc(fn); passing the pair instead of a
	// prebuilt closure keeps dispatch allocation-free.
	spawn func(s *Scheduler, fn func())

	// acc, when non-nil, is the per-step access log the Explorer's
	// partial-order reduction reads: entry i is the memory footprint of
	// step i, cleared to unknown at grant time and filled in by the granted
	// operation via noteAccess. Only the step-token holder writes between
	// grants, so entries need no lock.
	acc []stepAccess

	// hist, when non-nil, is the per-process observation-history hash the
	// Explorer's visited-state reduction maintains: entry pid folds in the
	// address, result and abort-flag observation of every operation pid has
	// performed, via noteResult. For a deterministic body that history pins
	// the process's control state, which is what lets a fingerprint of
	// (memory, histories, signals) stand in for "same global state". Like
	// acc, only the step-token holder writes its own entry between grants.
	// mem is the Memory whose state the fingerprint walks, attached by
	// SetGate so the pick callback can reach it at quiescent points.
	hist []uint64
	mem  *Memory

	mu       sync.Mutex
	waiting  []int // pids blocked at the gate, sorted ascending
	release  []int // Drain's scratch copy of waiting
	launched int   // processes started with Go or GoProc
	live     int   // launched minus returned
	started  bool  // Run has been called
	step     int
	maxSteps int

	// Fault injection and liveness watchdog (fault.go). plan/fs are non-nil
	// only when SetFaultPlan installed a plan, wd only when SetWatchdog set
	// a bound, so the fault-off hot path pays a nil check per operation and
	// nothing else. picks counts PickFunc consultations — it equals step
	// except across a stall fast-forward, which burns steps without a
	// choice, and it is what PickFunc and the recorded schedule index by so
	// replays stay aligned under faults. All fields below except fs.ops
	// (written only by the owning process goroutine) are guarded by mu.
	plan        *FaultPlan
	fs          *faultState
	wdBound     int
	wd          *wdState
	recording   bool    // log choice indices into sched
	sched       []int   // recorded choice-index prefix of the current run
	picks       int     // choices made so far
	lastGranted int     // pid holding the step token; -1 before the first grant
	faults      []Fault // fault log, in occurrence order
	failure     *FaultError
	stopRun     bool // watchdog force-stop: end the run at the next grant

	// Deferred starts (GoProc): a process launched with GoProc joins the
	// waiting set immediately but its goroutine is only dispatched when the
	// schedule first grants it a step, carrying that grant as a token its
	// first Await consumes — one wakeup instead of two.
	deferred []func() // per-pid function not yet dispatched, or nil
	token    []bool   // per-pid: first step already granted at dispatch

	// sig carries the run's outcome to Run (and Drain): nil when the last
	// live process returns, ErrStepLimit when the step budget runs out.
	sig chan error
}

var _ Gate = (*Scheduler)(nil)

// NewScheduler creates a scheduler for processes with ids in [0, n).
func NewScheduler(n int, pick PickFunc) *Scheduler {
	s := &Scheduler{
		pick:     pick,
		grant:    make([]chan struct{}, n),
		waiting:  make([]int, 0, n),
		release:  make([]int, 0, n),
		deferred: make([]func(), n),
		token:    make([]bool, n),
		// Capacity 2: a stalling run signals ErrStepLimit and then, once
		// drained, the final exit's nil — neither sender may block.
		sig:         make(chan error, 2),
		lastGranted: -1,
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{})
	}
	return s
}

// Await implements Gate.
func (s *Scheduler) Await(pid int) {
	if s.open.Load() {
		if s.kill.Load() {
			// DrainKill: unwind this process through the containment path
			// instead of letting it spin against state a fault abandoned.
			panic(procCrash{pid})
		}
		return
	}
	stalled := false
	if s.fs != nil {
		// May panic(procCrash) to unwind a crash victim; runOne contains it.
		stalled = s.faultCheck(pid)
	}
	if s.token[pid] {
		// First operation of a GoProc process: the grant that dispatched
		// it doubles as its first step — unless a stall window just opened,
		// in which case the process gives the fused grant back and parks at
		// the gate like everyone else so the window can hold it.
		s.token[pid] = false
		if !stalled {
			return
		}
	}
	s.mu.Lock()
	s.insertWaiting(pid)
	if s.started && len(s.waiting) == s.live {
		// Quiescent point: this process was the only one running, so it
		// arbitrates the next step itself.
		if next := s.grantNext(); next == pid {
			return // self-grant: keep running, no handoff
		} else if next >= 0 {
			s.deliver(next)
		}
	} else {
		s.mu.Unlock()
	}
	<-s.grant[pid]
}

// deliver hands the step token to pid: a wakeup through its grant channel,
// or — for a GoProc process not yet dispatched — the dispatch of its
// goroutine with the token attached. Delivery is serialized by the token
// discipline (only the current token holder delivers), so the deferred
// slots need no lock here.
func (s *Scheduler) deliver(pid int) {
	if fn := s.deferred[pid]; fn != nil {
		s.deferred[pid] = nil
		s.token[pid] = true
		s.dispatch(fn)
		return
	}
	s.grant[pid] <- struct{}{}
}

// dispatch launches a process body on a fresh or pooled goroutine, wrapped
// in the runProc exit protocol.
func (s *Scheduler) dispatch(fn func()) {
	if s.spawn != nil {
		s.spawn(s, fn)
		return
	}
	go s.runProc(fn)
}

// grantNext picks the next process to run at a quiescent point. Called with
// s.mu held and releases it. It returns the chosen pid after removing it
// from the waiting set, or -1 if the step budget ran out (in which case the
// stall has been signaled to Run and the waiting set is left intact for
// Drain). Under a fault plan it first dispatches due restarts, filters out
// stalled processes, and — when every waiting process is stalled —
// fast-forwards the global step to the next stall expiry or restart point
// (stall windows consume step budget but no schedule choice).
func (s *Scheduler) grantNext() int {
	for {
		if s.stopRun || s.step >= s.maxSteps {
			// Budget exhausted, or the watchdog force-stopped the run: end
			// it as a stall so the caller's drain protocol applies (Run
			// overlays the recorded failure, if any, on the outcome).
			s.mu.Unlock()
			select {
			case s.sig <- ErrStepLimit:
			default:
			}
			return -1
		}
		waiting := s.waiting
		if f := s.fs; f != nil && (f.numStalled > 0 || f.pending > 0) {
			s.enlistRestarts()
			waiting = s.eligible()
			if len(waiting) == 0 {
				// Every waiting process is stalled and any restarts are
				// still pending: fast-forward to the next fault event.
				if next, ok := s.nextFaultEvent(); ok && next <= s.maxSteps {
					s.step = next
				} else {
					s.step = s.maxSteps // the budget runs out mid-window
				}
				s.clock.Store(int64(s.step))
				continue
			}
		}
		i := s.pick(s.picks, waiting)
		if i < 0 {
			// The pick declined every waiting process (the Explorer's
			// reduction cut this schedule). End the run exactly like a
			// step-limit stall so the body's drain protocol applies
			// unchanged.
			s.mu.Unlock()
			select {
			case s.sig <- ErrStepLimit:
			default:
			}
			return -1
		}
		if s.acc != nil && s.step < len(s.acc) {
			s.acc[s.step] = unknownAccess
		}
		pid := waiting[i]
		if s.recording {
			s.sched = append(s.sched, i)
		}
		s.removeWaiting(pid)
		s.lastGranted = pid
		s.picks++
		s.step++
		s.clock.Store(int64(s.step))
		s.mu.Unlock()
		return pid
	}
}

// insertWaiting adds pid to the waiting set, keeping it sorted by id (it is
// almost always the largest-gap insertion of a handful of elements). The
// caller holds s.mu.
func (s *Scheduler) insertWaiting(pid int) {
	w := append(s.waiting, pid)
	i := len(w) - 1
	for ; i > 0 && w[i-1] > pid; i-- {
		w[i] = w[i-1]
	}
	w[i] = pid
	s.waiting = w
}

// removeWaiting deletes pid from the waiting set. The caller holds s.mu.
func (s *Scheduler) removeWaiting(pid int) {
	for i, q := range s.waiting {
		if q == pid {
			s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
			return
		}
	}
}

// faultCheck counts pid's operation attempt against the installed plan and
// applies any fault it scripts for this attempt. A crash (or
// crash-restart) unwinds the process body with a procCrash panic that the
// spawn site's containment swallows; a stall records its ineligibility
// window and reports true so Await parks the process at the gate.
func (s *Scheduler) faultCheck(pid int) (stalled bool) {
	f := s.fs
	op := f.ops[pid] + 1
	f.ops[pid] = op
	for _, sp := range f.specs[pid] {
		if int32(sp.Op) != op {
			continue
		}
		s.mu.Lock()
		flt := Fault{Proc: pid, Kind: sp.Kind, Op: sp.Op, Step: int64(s.step), Delay: sp.Delay}
		switch sp.Kind {
		case FaultStall:
			f.stallUntil[pid] = s.step + sp.Delay
			f.numStalled++
			stalled = true
		case FaultRestart:
			f.restartFn[pid] = s.plan.Restart(pid)
			f.restartAt[pid] = s.step + sp.Delay
			f.pending++
		}
		s.recordFault(flt)
		s.mu.Unlock()
		if sp.Kind != FaultStall {
			panic(procCrash{pid})
		}
	}
	return stalled
}

// recordFault appends to the fault log, attaching the replay prefix when
// schedule recording is on. The caller holds s.mu.
func (s *Scheduler) recordFault(flt Fault) Fault {
	if s.recording {
		flt.Schedule = append([]int(nil), s.sched...)
	}
	s.faults = append(s.faults, flt)
	return flt
}

// eligible filters the waiting set down to processes whose stall window has
// passed, expiring windows as it goes. The result lives in the fault
// state's scratch buffer. The caller holds s.mu.
func (s *Scheduler) eligible() []int {
	f := s.fs
	e := f.elig[:0]
	for _, pid := range s.waiting {
		if u := f.stallUntil[pid]; u > 0 {
			if u > s.step {
				continue // still inside the stall window
			}
			f.stallUntil[pid] = 0
			f.numStalled--
		}
		e = append(e, pid)
	}
	f.elig = e
	return e
}

// enlistRestarts dispatches restart bodies whose delay has passed: the pid
// rejoins the machine as a deferred (GoProc-style) process, entering the
// waiting set and the live count together so the quiescence invariant
// (len(waiting) == live at arbitration) is preserved. The caller holds
// s.mu.
func (s *Scheduler) enlistRestarts() {
	f := s.fs
	if f.pending == 0 {
		return
	}
	for pid, fn := range f.restartFn {
		if fn == nil || f.restartAt[pid] > s.step {
			continue
		}
		f.restartFn[pid] = nil
		f.pending--
		s.launched++
		s.live++
		s.deferred[pid] = fn
		s.insertWaiting(pid)
	}
}

// nextFaultEvent returns the earliest global step at which a stalled
// process becomes eligible again or a pending restart becomes due. The
// caller holds s.mu; pending restarts due now were already enlisted.
func (s *Scheduler) nextFaultEvent() (int, bool) {
	f := s.fs
	next, ok := 0, false
	for _, pid := range s.waiting {
		if u := f.stallUntil[pid]; u > s.step && (!ok || u < next) {
			next, ok = u, true
		}
	}
	for pid, fn := range f.restartFn {
		if fn != nil && (!ok || f.restartAt[pid] < next) {
			next, ok = f.restartAt[pid], true
		}
	}
	return next, ok
}

// notePhase drives the liveness watchdog (SetWatchdog): it tracks which
// processes have completed the doorway (declared PhaseWaiting) and counts
// critical-section entries by others past each one; crossing the bound
// records a FaultStarvation with the overtaken process as the victim and
// force-stops the run, which then fails like a safety violation with a
// replayable schedule.
func (s *Scheduler) notePhase(pid int, old, ph Phase) {
	s.mu.Lock()
	w := s.wd
	if ph == PhaseWaiting {
		w.waiting[pid] = true
		w.over[pid] = 0
	} else if old == PhaseWaiting {
		w.waiting[pid] = false
	}
	if ph == PhaseCS && s.failure == nil {
		for q := range w.waiting {
			if q == pid || !w.waiting[q] {
				continue
			}
			w.over[q]++
			if int(w.over[q]) > s.wdBound {
				flt := s.recordFault(Fault{Proc: q, Kind: FaultStarvation, Op: int(w.over[q]), Step: int64(s.step)})
				s.failure = &FaultError{Fault: flt, sentinel: ErrStarvation}
				s.stopRun = true
				break
			}
		}
	}
	s.mu.Unlock()
}

// noteAccess records the memory footprint of the currently granted step;
// Proc's operation methods call it right after the gate grants them the
// step. The entry was cleared to unknown at grant time, so steps that
// never reach an operation (a process released by Drain, a Gate.Await with
// no operation behind it) conservatively stay unknown. Only the step-token
// holder runs between grants, and its write is ordered before the next
// grant by the gate handoff, so no lock is needed; clock pins the step the
// token holder owns.
func (s *Scheduler) noteAccess(a Addr, mut bool) {
	if s.acc == nil || s.open.Load() {
		return
	}
	if i := s.clock.Load() - 1; i >= 0 && i < int64(len(s.acc)) {
		s.acc[i] = stepAccess{addr: a, mut: mut}
	}
}

// noteResult folds an operation's address, result value, and the abort
// flag the process could have observed into its observation-history hash
// (see hist). Proc's operation methods call it on the gated fast paths,
// right after computing the result. Same write discipline as noteAccess:
// only the step-token holder runs between grants.
func (s *Scheduler) noteResult(pid int, a Addr, v uint64, aborted bool) {
	if s.hist == nil || s.open.Load() || pid >= len(s.hist) {
		return
	}
	fl := uint64(0)
	if aborted {
		fl = 1
	}
	s.hist[pid] = mix(mix(mix(s.hist[pid], uint64(a)), v), fl)
}

// Go launches fn as a scheduled process. It must be called for every
// process before Run, and fn must issue its shared-memory operations
// through a Proc of a Memory gated by this scheduler.
func (s *Scheduler) Go(fn func()) {
	s.mu.Lock()
	s.launched++
	s.live++
	s.mu.Unlock()
	s.dispatch(fn)
}

// runProc runs a process body to completion and then retires it — and keeps
// going: when the exiting process's pick lands on a process whose goroutine
// was never dispatched (GoProc), this goroutine runs that body itself
// instead of waking another one. A replay whose schedule runs processes
// back-to-back thus executes entirely on one goroutine, with no handoff at
// all between the processes.
func (s *Scheduler) runProc(fn func()) {
	for fn != nil {
		fn = s.runOne(fn)
	}
}

// runOne runs one process body, containing any panic that unwinds it: an
// injected crash (procCrash) passes silently — the fault was recorded at
// the gate — and anything else is recorded as a FaultPanic that fails the
// run. Either way the process retires through exitNext, so the step token
// and the run's completion signal survive the unwind instead of
// deadlocking the gate or killing the host test binary.
func (s *Scheduler) runOne(fn func()) (next func()) {
	defer func() {
		if r := recover(); r != nil {
			s.contain(r)
			next = s.exitNext()
		}
	}()
	fn()
	return s.exitNext()
}

// contain converts a recovered process panic into the run's failure
// record. Mid-schedule the panicking process necessarily holds the step
// token, so lastGranted attributes it; a panic before the first grant or
// after Drain opened the gate (when processes run concurrently) is
// attributed to process -1.
func (s *Scheduler) contain(r any) {
	if _, ok := r.(procCrash); ok {
		return // injected crash, recorded at the gate
	}
	stack := string(debug.Stack())
	s.mu.Lock()
	pid := s.lastGranted
	if s.open.Load() {
		pid = -1
	}
	flt := Fault{Proc: pid, Kind: FaultPanic, Step: int64(s.step), Value: r, Stack: stack}
	if f := s.fs; f != nil && pid >= 0 {
		flt.Op = int(f.ops[pid])
	}
	flt = s.recordFault(flt)
	if s.failure == nil {
		s.failure = &FaultError{Fault: flt, sentinel: ErrPanicked}
	}
	s.mu.Unlock()
}

// GoProc launches fn as the process with id pid, deferring the goroutine
// start until the scheduler first grants pid a step: the process joins the
// waiting set immediately, so launching costs no wakeup and the dispatch
// wakeup doubles as the first grant. It explores the exact same schedule
// tree as Go for any body whose processes touch nothing shared before
// their first gated operation — the only observable difference is that
// fn's code before its first operation runs after the first grant instead
// of before Run. pid must match the Proc the function drives and must not
// be launched twice.
func (s *Scheduler) GoProc(pid int, fn func()) {
	s.mu.Lock()
	s.launched++
	s.live++
	s.deferred[pid] = fn
	s.insertWaiting(pid)
	s.mu.Unlock()
}

// exitNext retires a returning process. If it was the last one running
// while others wait at the gate, it passes the step token on; if it was the
// last one alive, it releases Run (and Drain). When the token goes to a
// never-dispatched process, exitNext returns that process's body for the
// caller (runProc) to run in place, saving the dispatch wakeup.
func (s *Scheduler) exitNext() func() {
	s.mu.Lock()
	s.live--
	if s.live == 0 {
		// Pending restarts revive the run: grantNext fast-forwards to the
		// restart point, enlists the body, and grants it — unless the run
		// is over (drained, force-stopped, or not yet started; the
		// pre-start case is revived by Run itself).
		if f := s.fs; f != nil && f.pending > 0 && s.started && !s.open.Load() && !s.stopRun {
			if next := s.grantNext(); next >= 0 { // releases s.mu
				if fn := s.deferred[next]; fn != nil {
					s.deferred[next] = nil
					s.token[next] = true
					return fn
				}
				s.grant[next] <- struct{}{}
			}
			return nil
		}
		s.mu.Unlock()
		s.sig <- nil
		return nil
	}
	if s.started && !s.open.Load() && len(s.waiting) == s.live {
		if next := s.grantNext(); next >= 0 { // releases s.mu
			if fn := s.deferred[next]; fn != nil {
				s.deferred[next] = nil
				s.token[next] = true
				return fn
			}
			s.grant[next] <- struct{}{}
		}
		return nil
	}
	s.mu.Unlock()
	return nil
}

// Run drives the schedule until all processes have returned or maxSteps
// shared-memory steps have been granted, in which case it returns
// ErrStepLimit. After ErrStepLimit the caller should resolve the stall
// (e.g. deliver abort signals) and call Drain to release every process.
//
// When a fault plan or the watchdog recorded a failure — a contained
// process panic, a starvation violation — Run returns that *FaultError
// (matching errors.Is ErrPanicked / ErrStarvation) instead, whatever the
// raw outcome: the failure usually caused the stall. The ErrStepLimit
// drain protocol applies to FaultError too, and both steps are no-ops when
// every process already returned.
func (s *Scheduler) Run(maxSteps int) error {
	s.mu.Lock()
	if s.launched == 0 {
		s.mu.Unlock()
		return nil
	}
	s.maxSteps = maxSteps
	s.started = true
	if s.live > 0 && len(s.waiting) == s.live {
		// Every process already reached the gate: grant the first step.
		if next := s.grantNext(); next >= 0 { // releases s.mu
			s.deliver(next)
		} else {
			<-s.sig // consume the stall grantNext just signaled
			return s.runErr(ErrStepLimit)
		}
	} else {
		s.mu.Unlock()
	}
	err := <-s.sig
	// When every process crashed before the schedule started, the run
	// completes with restarts still pending (mid-run, exitNext revives them
	// itself): revive here, once the completion signal proves nothing is
	// live, and resume waiting.
	for err == nil {
		s.mu.Lock()
		f := s.fs
		if f == nil || f.pending == 0 || s.live != 0 || s.stopRun {
			s.mu.Unlock()
			break
		}
		if next := s.grantNext(); next >= 0 { // releases s.mu
			s.deliver(next)
		} else {
			<-s.sig
			return s.runErr(ErrStepLimit)
		}
		err = <-s.sig
	}
	return s.runErr(err)
}

// runErr overlays the run's recorded failure on its raw outcome.
func (s *Scheduler) runErr(err error) error {
	s.mu.Lock()
	failure := s.failure
	s.mu.Unlock()
	if failure != nil {
		return failure
	}
	return err
}

// reset returns the scheduler to its initial state so a driver (the
// Explorer) can reuse one scheduler — and its grant channels — across many
// short runs instead of allocating a fresh one per run. It must only be
// called after Run (and Drain, if Run stalled) has returned, when no
// process from the previous run is live. The defensive drains clear a
// completion or stall token that the previous run signaled but never
// consumed (possible when a stall and the final exit race).
func (s *Scheduler) reset() {
	s.open.Store(false)
	s.clock.Store(0)
	s.waiting = s.waiting[:0]
	s.launched = 0
	s.live = 0
	s.started = false
	s.step = 0
	s.maxSteps = 0
	s.picks = 0
	s.lastGranted = -1
	s.stopRun = false
	s.failure = nil
	s.mem = nil
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.faults = s.faults[:0]
	s.sched = s.sched[:0]
	if s.fs != nil {
		s.fs.reset()
	}
	if s.wd != nil {
		s.wd.reset()
	}
	for i := range s.deferred {
		s.deferred[i] = nil
		s.token[i] = false
	}
	for {
		select {
		case <-s.sig:
			continue
		default:
		}
		break
	}
}

// active reports whether a schedule is in progress: Run has been called,
// live processes remain, and the gate has not been drained open. Memory
// uses it to reject gate or observer swaps that would race the step token.
func (s *Scheduler) active() bool {
	if s.open.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && s.live > 0
}

// Steps returns a logical clock: the number of shared-memory steps granted
// so far. Processes may read it between their own operations to timestamp
// events for ordering assertions (the value is monotonic, and a value read
// by a process after one of its operations is ≥ that operation's step).
// Under a fault plan the clock also advances across stall fast-forwards.
func (s *Scheduler) Steps() int64 { return s.clock.Load() }

// SetFaultPlan installs a deterministic fault script (fault.go), or clears
// it with nil. It must be called before Run — never mid-schedule — and the
// plan persists across the Explorer's internal reuse of a scheduler.
// Installing a plan turns on schedule recording, so every Fault carries
// the choice-index prefix that replays it.
func (s *Scheduler) SetFaultPlan(plan *FaultPlan) {
	if s.active() {
		panic("rmr: SetFaultPlan during a schedule")
	}
	s.plan = plan
	if plan == nil {
		s.fs = nil
		s.recording = s.wd != nil
		return
	}
	plan.validate(len(s.grant))
	s.fs = newFaultState(len(s.grant), plan)
	s.recording = true
}

// FaultPlan returns the installed fault plan, or nil.
func (s *Scheduler) FaultPlan() *FaultPlan { return s.plan }

// SetWatchdog arms the liveness watchdog: once a process completes the
// doorway (declares PhaseWaiting via Proc.EnterPhase), more than bound
// critical-section entries by other processes before it leaves the waiting
// phase fail the run with a *FaultError wrapping ErrStarvation, carrying a
// replayable schedule. A meaningful bound depends on the lock: starvation-
// free locks bound overtaking by O(n) entries per passage, so a few times
// the process count is safe for single-passage bodies, while unfair locks
// (test-and-set) genuinely starve and will trip it. bound <= 0 disarms.
// Must not be called mid-schedule.
func (s *Scheduler) SetWatchdog(bound int) {
	if s.active() {
		panic("rmr: SetWatchdog during a schedule")
	}
	s.wdBound = bound
	if bound <= 0 {
		s.wd = nil
		s.recording = s.fs != nil
		return
	}
	if s.wd == nil {
		s.wd = newWdState(len(s.grant))
	}
	s.recording = true
}

// RecordSchedule toggles choice recording independently of a fault plan or
// watchdog (either forces it on): Schedule then returns the choice-index
// prefix of the current run, replayable with ReplayPick. Must not be
// called mid-schedule.
func (s *Scheduler) RecordSchedule(on bool) {
	if s.active() {
		panic("rmr: RecordSchedule during a schedule")
	}
	s.recording = on || s.fs != nil || s.wd != nil
}

// Faults returns a copy of the faults recorded during the current (or last)
// run, in occurrence order: injected crashes and stalls that took effect,
// contained panics, and watchdog violations.
func (s *Scheduler) Faults() []Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.faults) == 0 {
		return nil
	}
	return append([]Fault(nil), s.faults...)
}

// Schedule returns a copy of the recorded choice-index prefix of the
// current (or last) run. It is safe to call concurrently with a run — a
// wall-clock deadline handler can dump the in-flight schedule.
func (s *Scheduler) Schedule() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sched) == 0 {
		return nil
	}
	return append([]int(nil), s.sched...)
}

// Err returns the failure the current (or last) run recorded — the
// *FaultError for a contained panic or watchdog violation — or nil. Run
// returns the same error; Err serves hand-driven drivers and deadline
// handlers that cannot wait for Run.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure == nil {
		return nil
	}
	return s.failure
}

// Drain opens the gate and waits for every remaining process to return.
// It is only needed after Run returned ErrStepLimit.
func (s *Scheduler) Drain() {
	s.drain()
}

// DrainKill is Drain for runs a fault wedged beyond cooperation: instead of
// running the released processes to completion through the open gate — which
// hangs when a survivor spins forever on state a crashed process abandoned
// and ignores its abort signal — every released process is unwound at its
// next shared-memory operation via the panic-containment path, as if
// crash-stopped there. The unwinds happen outside the recorded schedule and
// leave no fault-log entries, so they perturb neither replay nor
// exploration; the simulated memory is abandoned mid-operation and must not
// be trusted afterwards.
func (s *Scheduler) DrainKill() {
	s.kill.Store(true)
	s.drain()
	s.kill.Store(false)
}

func (s *Scheduler) drain() {
	s.open.Store(true)
	s.mu.Lock()
	// The release buffer is scheduler-owned scratch so that a drain — which
	// the Explorer's reduction triggers on every cut schedule — stays
	// allocation-free in steady state.
	s.release = append(s.release[:0], s.waiting...)
	release := s.release
	s.waiting = s.waiting[:0]
	done := s.live == 0
	s.mu.Unlock()
	for _, pid := range release {
		if fn := s.deferred[pid]; fn != nil {
			// Never dispatched: start it now; it runs through the open
			// gate to completion.
			s.deferred[pid] = nil
			s.dispatch(fn)
			continue
		}
		s.grant[pid] <- struct{}{}
	}
	if !done {
		<-s.sig
	}
}
