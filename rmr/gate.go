package rmr

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Gate serializes shared-memory steps. Before every shared-memory operation
// a process calls Await with its id and blocks until the gate grants it the
// step. Gates turn concurrent executions into explicit interleavings, making
// failures reproducible and adversarial schedules expressible.
type Gate interface {
	Await(pid int)
}

// ErrStepLimit is returned by Scheduler.Run when the schedule exceeds the
// step budget, which usually indicates a liveness bug (or a workload that
// needs a larger budget).
var ErrStepLimit = errors.New("rmr: scheduler step limit exceeded")

// PickFunc selects which waiting process takes the next step. It receives
// the global step number and the ids of all processes currently waiting at
// the gate — sorted by process id, so that a choice index denotes the same
// process in every run that made the same prior choices (the property the
// Explorer's replay soundness rests on) — and returns an index into that
// slice. Returning a negative index declines to schedule anything: the run
// ends as if the step budget were exhausted (Run returns ErrStepLimit, and
// the caller drains as usual). The Explorer's partial-order reduction uses
// this to cut schedules whose continuations are all equivalent to
// schedules explored elsewhere.
type PickFunc func(step int, waiting []int) int

// RandomPick returns a PickFunc that chooses uniformly at random with the
// given seed. The same seed always reproduces the same schedule for the
// same program.
func RandomPick(seed int64) PickFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(_ int, waiting []int) int {
		return rng.Intn(len(waiting))
	}
}

// RoundRobinPick returns a PickFunc that cycles through process ids,
// granting the lowest-id waiting process that is strictly greater than the
// last scheduled id, wrapping around when none is.
func RoundRobinPick() PickFunc {
	last := -1
	return func(_ int, waiting []int) int {
		best, bestWrap := -1, -1
		for i, pid := range waiting {
			if pid > last && (best == -1 || pid < waiting[best]) {
				best = i
			}
			if bestWrap == -1 || pid < waiting[bestWrap] {
				bestWrap = i
			}
		}
		if best == -1 {
			best = bestWrap
		}
		last = waiting[best]
		return best
	}
}

// PreferPick returns a PickFunc that always grants a process from preferred
// when one is waiting, falling back to fallback otherwise. It is the
// building block for adversarial schedules ("run the aborter until it is
// stuck, then let the exiter proceed").
func PreferPick(preferred []int, fallback PickFunc) PickFunc {
	pref := make(map[int]bool, len(preferred))
	for _, pid := range preferred {
		pref[pid] = true
	}
	return func(step int, waiting []int) int {
		for i, pid := range waiting {
			if pref[pid] {
				return i
			}
		}
		return fallback(step, waiting)
	}
}

// Scheduler is a Gate driven by a PickFunc. Typical use:
//
//	s := rmr.NewScheduler(n, rmr.RandomPick(seed))
//	m := rmr.NewMemory(rmr.CC, n, s)
//	for i := 0; i < n; i++ { s.Go(func() { body(m.Proc(i)) }) }
//	err := s.Run(maxSteps)
//
// Run drives the interleaving until every process launched with Go has
// returned, or the step budget is exhausted.
//
// Steps are granted by direct handoff: a process that blocks at the gate
// (or returns) observes that it was the last one running, consults the
// PickFunc, and wakes the chosen process itself — one goroutine switch per
// step, and none at all when a process grants itself the next step. The
// schedule is identical to a central-arbiter implementation: a pick happens
// exactly at the quiescent points where every live process is blocked, over
// the id-sorted waiting set.
type Scheduler struct {
	pick  PickFunc
	grant []chan struct{}
	open  atomic.Bool
	clock atomic.Int64 // steps granted so far; see Steps

	// spawn, when non-nil, launches process functions instead of the go
	// statement. The Explorer points it at a goroutine pool so that replays
	// reuse process goroutines instead of spawning fresh ones. The launched
	// goroutine must call s.runProc(fn); passing the pair instead of a
	// prebuilt closure keeps dispatch allocation-free.
	spawn func(s *Scheduler, fn func())

	// acc, when non-nil, is the per-step access log the Explorer's
	// partial-order reduction reads: entry i is the memory footprint of
	// step i, cleared to unknown at grant time and filled in by the granted
	// operation via noteAccess. Only the step-token holder writes between
	// grants, so entries need no lock.
	acc []stepAccess

	mu       sync.Mutex
	waiting  []int // pids blocked at the gate, sorted ascending
	release  []int // Drain's scratch copy of waiting
	launched int   // processes started with Go or GoProc
	live     int   // launched minus returned
	started  bool  // Run has been called
	step     int
	maxSteps int

	// Deferred starts (GoProc): a process launched with GoProc joins the
	// waiting set immediately but its goroutine is only dispatched when the
	// schedule first grants it a step, carrying that grant as a token its
	// first Await consumes — one wakeup instead of two.
	deferred []func() // per-pid function not yet dispatched, or nil
	token    []bool   // per-pid: first step already granted at dispatch

	// sig carries the run's outcome to Run (and Drain): nil when the last
	// live process returns, ErrStepLimit when the step budget runs out.
	sig chan error
}

var _ Gate = (*Scheduler)(nil)

// NewScheduler creates a scheduler for processes with ids in [0, n).
func NewScheduler(n int, pick PickFunc) *Scheduler {
	s := &Scheduler{
		pick:     pick,
		grant:    make([]chan struct{}, n),
		waiting:  make([]int, 0, n),
		release:  make([]int, 0, n),
		deferred: make([]func(), n),
		token:    make([]bool, n),
		// Capacity 2: a stalling run signals ErrStepLimit and then, once
		// drained, the final exit's nil — neither sender may block.
		sig: make(chan error, 2),
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{})
	}
	return s
}

// Await implements Gate.
func (s *Scheduler) Await(pid int) {
	if s.open.Load() {
		return
	}
	if s.token[pid] {
		// First operation of a GoProc process: the grant that dispatched
		// it doubles as its first step.
		s.token[pid] = false
		return
	}
	s.mu.Lock()
	// Insert pid keeping waiting sorted by id (it is almost always the
	// largest-gap insertion of a handful of elements).
	w := append(s.waiting, pid)
	i := len(w) - 1
	for ; i > 0 && w[i-1] > pid; i-- {
		w[i] = w[i-1]
	}
	w[i] = pid
	s.waiting = w
	if s.started && len(s.waiting) == s.live {
		// Quiescent point: this process was the only one running, so it
		// arbitrates the next step itself.
		if next := s.grantNext(); next == pid {
			return // self-grant: keep running, no handoff
		} else if next >= 0 {
			s.deliver(next)
		}
	} else {
		s.mu.Unlock()
	}
	<-s.grant[pid]
}

// deliver hands the step token to pid: a wakeup through its grant channel,
// or — for a GoProc process not yet dispatched — the dispatch of its
// goroutine with the token attached. Delivery is serialized by the token
// discipline (only the current token holder delivers), so the deferred
// slots need no lock here.
func (s *Scheduler) deliver(pid int) {
	if fn := s.deferred[pid]; fn != nil {
		s.deferred[pid] = nil
		s.token[pid] = true
		s.dispatch(fn)
		return
	}
	s.grant[pid] <- struct{}{}
}

// dispatch launches a process body on a fresh or pooled goroutine, wrapped
// in the runProc exit protocol.
func (s *Scheduler) dispatch(fn func()) {
	if s.spawn != nil {
		s.spawn(s, fn)
		return
	}
	go s.runProc(fn)
}

// grantNext picks the next process to run at a quiescent point. Called with
// s.mu held and releases it. It returns the chosen pid after removing it
// from the waiting set, or -1 if the step budget ran out (in which case the
// stall has been signaled to Run and the waiting set is left intact for
// Drain).
func (s *Scheduler) grantNext() int {
	if s.step >= s.maxSteps {
		s.mu.Unlock()
		select {
		case s.sig <- ErrStepLimit:
		default:
		}
		return -1
	}
	i := s.pick(s.step, s.waiting)
	if i < 0 {
		// The pick declined every waiting process (the Explorer's
		// reduction cut this schedule). End the run exactly like a
		// step-limit stall so the body's drain protocol applies unchanged.
		s.mu.Unlock()
		select {
		case s.sig <- ErrStepLimit:
		default:
		}
		return -1
	}
	if s.acc != nil && s.step < len(s.acc) {
		s.acc[s.step] = unknownAccess
	}
	pid := s.waiting[i]
	s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
	s.step++
	s.clock.Store(int64(s.step))
	s.mu.Unlock()
	return pid
}

// noteAccess records the memory footprint of the currently granted step;
// Proc's operation methods call it right after the gate grants them the
// step. The entry was cleared to unknown at grant time, so steps that
// never reach an operation (a process released by Drain, a Gate.Await with
// no operation behind it) conservatively stay unknown. Only the step-token
// holder runs between grants, and its write is ordered before the next
// grant by the gate handoff, so no lock is needed; clock pins the step the
// token holder owns.
func (s *Scheduler) noteAccess(a Addr, mut bool) {
	if s.acc == nil || s.open.Load() {
		return
	}
	if i := s.clock.Load() - 1; i >= 0 && i < int64(len(s.acc)) {
		s.acc[i] = stepAccess{addr: a, mut: mut}
	}
}

// Go launches fn as a scheduled process. It must be called for every
// process before Run, and fn must issue its shared-memory operations
// through a Proc of a Memory gated by this scheduler.
func (s *Scheduler) Go(fn func()) {
	s.mu.Lock()
	s.launched++
	s.live++
	s.mu.Unlock()
	s.dispatch(fn)
}

// runProc runs a process body to completion and then retires it — and keeps
// going: when the exiting process's pick lands on a process whose goroutine
// was never dispatched (GoProc), this goroutine runs that body itself
// instead of waking another one. A replay whose schedule runs processes
// back-to-back thus executes entirely on one goroutine, with no handoff at
// all between the processes.
func (s *Scheduler) runProc(fn func()) {
	for fn != nil {
		fn()
		fn = s.exitNext()
	}
}

// GoProc launches fn as the process with id pid, deferring the goroutine
// start until the scheduler first grants pid a step: the process joins the
// waiting set immediately, so launching costs no wakeup and the dispatch
// wakeup doubles as the first grant. It explores the exact same schedule
// tree as Go for any body whose processes touch nothing shared before
// their first gated operation — the only observable difference is that
// fn's code before its first operation runs after the first grant instead
// of before Run. pid must match the Proc the function drives and must not
// be launched twice.
func (s *Scheduler) GoProc(pid int, fn func()) {
	s.mu.Lock()
	s.launched++
	s.live++
	s.deferred[pid] = fn
	w := append(s.waiting, pid)
	i := len(w) - 1
	for ; i > 0 && w[i-1] > pid; i-- {
		w[i] = w[i-1]
	}
	w[i] = pid
	s.waiting = w
	s.mu.Unlock()
}

// exitNext retires a returning process. If it was the last one running
// while others wait at the gate, it passes the step token on; if it was the
// last one alive, it releases Run (and Drain). When the token goes to a
// never-dispatched process, exitNext returns that process's body for the
// caller (runProc) to run in place, saving the dispatch wakeup.
func (s *Scheduler) exitNext() func() {
	s.mu.Lock()
	s.live--
	if s.live == 0 {
		s.mu.Unlock()
		s.sig <- nil
		return nil
	}
	if s.started && !s.open.Load() && len(s.waiting) == s.live {
		if next := s.grantNext(); next >= 0 { // releases s.mu
			if fn := s.deferred[next]; fn != nil {
				s.deferred[next] = nil
				s.token[next] = true
				return fn
			}
			s.grant[next] <- struct{}{}
		}
		return nil
	}
	s.mu.Unlock()
	return nil
}

// Run drives the schedule until all processes have returned or maxSteps
// shared-memory steps have been granted, in which case it returns
// ErrStepLimit. After ErrStepLimit the caller should resolve the stall
// (e.g. deliver abort signals) and call Drain to release every process.
func (s *Scheduler) Run(maxSteps int) error {
	s.mu.Lock()
	if s.launched == 0 {
		s.mu.Unlock()
		return nil
	}
	s.maxSteps = maxSteps
	s.started = true
	if s.live > 0 && len(s.waiting) == s.live {
		// Every process already reached the gate: grant the first step.
		if next := s.grantNext(); next >= 0 { // releases s.mu
			s.deliver(next)
		} else {
			<-s.sig // consume the stall grantNext just signaled
			return ErrStepLimit
		}
	} else {
		s.mu.Unlock()
	}
	return <-s.sig
}

// reset returns the scheduler to its initial state so a driver (the
// Explorer) can reuse one scheduler — and its grant channels — across many
// short runs instead of allocating a fresh one per run. It must only be
// called after Run (and Drain, if Run stalled) has returned, when no
// process from the previous run is live. The defensive drains clear a
// completion or stall token that the previous run signaled but never
// consumed (possible when a stall and the final exit race).
func (s *Scheduler) reset() {
	s.open.Store(false)
	s.clock.Store(0)
	s.waiting = s.waiting[:0]
	s.launched = 0
	s.live = 0
	s.started = false
	s.step = 0
	s.maxSteps = 0
	for i := range s.deferred {
		s.deferred[i] = nil
		s.token[i] = false
	}
	for {
		select {
		case <-s.sig:
			continue
		default:
		}
		break
	}
}

// active reports whether a schedule is in progress: Run has been called,
// live processes remain, and the gate has not been drained open. Memory
// uses it to reject gate or observer swaps that would race the step token.
func (s *Scheduler) active() bool {
	if s.open.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && s.live > 0
}

// Steps returns a logical clock: the number of shared-memory steps granted
// so far. Processes may read it between their own operations to timestamp
// events for ordering assertions (the value is monotonic, and a value read
// by a process after one of its operations is ≥ that operation's step).
func (s *Scheduler) Steps() int64 { return s.clock.Load() }

// Drain opens the gate and waits for every remaining process to return.
// It is only needed after Run returned ErrStepLimit.
func (s *Scheduler) Drain() {
	s.open.Store(true)
	s.mu.Lock()
	// The release buffer is scheduler-owned scratch so that a drain — which
	// the Explorer's reduction triggers on every cut schedule — stays
	// allocation-free in steady state.
	s.release = append(s.release[:0], s.waiting...)
	release := s.release
	s.waiting = s.waiting[:0]
	done := s.live == 0
	s.mu.Unlock()
	for _, pid := range release {
		if fn := s.deferred[pid]; fn != nil {
			// Never dispatched: start it now; it runs through the open
			// gate to completion.
			s.deferred[pid] = nil
			s.dispatch(fn)
			continue
		}
		s.grant[pid] <- struct{}{}
	}
	if !done {
		<-s.sig
	}
}
