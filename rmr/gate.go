package rmr

import (
	"errors"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Gate serializes shared-memory steps. Before every shared-memory operation
// a process calls Await with its id and blocks until the gate grants it the
// step. Gates turn concurrent executions into explicit interleavings, making
// failures reproducible and adversarial schedules expressible.
type Gate interface {
	Await(pid int)
}

// ErrStepLimit is returned by Scheduler.Run when the schedule exceeds the
// step budget, which usually indicates a liveness bug (or a workload that
// needs a larger budget).
var ErrStepLimit = errors.New("rmr: scheduler step limit exceeded")

// PickFunc selects which waiting process takes the next step. It receives
// the global step number and the ids of all processes currently waiting at
// the gate — sorted by process id, so that a choice index denotes the same
// process in every run that made the same prior choices (the property the
// Explorer's replay soundness rests on) — and returns an index into that
// slice.
type PickFunc func(step int, waiting []int) int

// RandomPick returns a PickFunc that chooses uniformly at random with the
// given seed. The same seed always reproduces the same schedule for the
// same program.
func RandomPick(seed int64) PickFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(_ int, waiting []int) int {
		return rng.Intn(len(waiting))
	}
}

// RoundRobinPick returns a PickFunc that cycles through process ids,
// granting the lowest-id waiting process that is strictly greater than the
// last scheduled id, wrapping around when none is.
func RoundRobinPick() PickFunc {
	last := -1
	return func(_ int, waiting []int) int {
		best, bestWrap := -1, -1
		for i, pid := range waiting {
			if pid > last && (best == -1 || pid < waiting[best]) {
				best = i
			}
			if bestWrap == -1 || pid < waiting[bestWrap] {
				bestWrap = i
			}
		}
		if best == -1 {
			best = bestWrap
		}
		last = waiting[best]
		return best
	}
}

// PreferPick returns a PickFunc that always grants a process from preferred
// when one is waiting, falling back to fallback otherwise. It is the
// building block for adversarial schedules ("run the aborter until it is
// stuck, then let the exiter proceed").
func PreferPick(preferred []int, fallback PickFunc) PickFunc {
	pref := make(map[int]bool, len(preferred))
	for _, pid := range preferred {
		pref[pid] = true
	}
	return func(step int, waiting []int) int {
		for i, pid := range waiting {
			if pref[pid] {
				return i
			}
		}
		return fallback(step, waiting)
	}
}

// Scheduler is a Gate driven by a PickFunc. Typical use:
//
//	s := rmr.NewScheduler(n, rmr.RandomPick(seed))
//	m := rmr.NewMemory(rmr.CC, n, s)
//	for i := 0; i < n; i++ { s.Go(func() { body(m.Proc(i)) }) }
//	err := s.Run(maxSteps)
//
// Run drives the interleaving until every process launched with Go has
// returned, or the step budget is exhausted.
type Scheduler struct {
	pick  PickFunc
	ready chan int
	done  chan struct{}
	grant []chan struct{}
	open  atomic.Bool
	live  int
	clock atomic.Int64 // steps granted so far; see Steps

	// pending holds the waiting set at the moment Run bailed out with
	// ErrStepLimit so Drain can release those processes.
	pending []int
}

var _ Gate = (*Scheduler)(nil)

// NewScheduler creates a scheduler for processes with ids in [0, n).
func NewScheduler(n int, pick PickFunc) *Scheduler {
	s := &Scheduler{
		pick:  pick,
		ready: make(chan int),
		done:  make(chan struct{}),
		grant: make([]chan struct{}, n),
	}
	for i := range s.grant {
		s.grant[i] = make(chan struct{})
	}
	return s
}

// Await implements Gate.
func (s *Scheduler) Await(pid int) {
	if s.open.Load() {
		return
	}
	s.ready <- pid
	<-s.grant[pid]
}

// Go launches fn as a scheduled process. It must be called for every
// process before Run, and fn must issue its shared-memory operations
// through a Proc of a Memory gated by this scheduler.
func (s *Scheduler) Go(fn func()) {
	s.live++
	go func() {
		defer func() { s.done <- struct{}{} }()
		fn()
	}()
}

// Run drives the schedule until all processes have returned or maxSteps
// shared-memory steps have been granted, in which case it returns
// ErrStepLimit. After ErrStepLimit the caller should resolve the stall
// (e.g. deliver abort signals) and call Drain to release every process.
func (s *Scheduler) Run(maxSteps int) error {
	var waiting []int
	step := 0
	for s.live > 0 {
		for len(waiting) < s.live {
			select {
			case pid := <-s.ready:
				waiting = append(waiting, pid)
			case <-s.done:
				s.live--
			}
		}
		if s.live == 0 {
			break
		}
		if step >= maxSteps {
			s.pending = waiting
			return ErrStepLimit
		}
		// Canonical order: goroutine startup races make arrival order
		// nondeterministic, but the *set* of waiting processes at each
		// quiescent point is determined by the choices made so far.
		sort.Ints(waiting)
		i := s.pick(step, waiting)
		pid := waiting[i]
		waiting[i] = waiting[len(waiting)-1]
		waiting = waiting[:len(waiting)-1]
		step++
		s.clock.Store(int64(step))
		s.grant[pid] <- struct{}{}
	}
	return nil
}

// Steps returns a logical clock: the number of shared-memory steps granted
// so far. Processes may read it between their own operations to timestamp
// events for ordering assertions (the value is monotonic, and a value read
// by a process after one of its operations is ≥ that operation's step).
func (s *Scheduler) Steps() int64 { return s.clock.Load() }

// Drain opens the gate and waits for every remaining process to return.
// It is only needed after Run returned ErrStepLimit.
func (s *Scheduler) Drain() {
	s.open.Store(true)
	for _, pid := range s.pending {
		s.grant[pid] <- struct{}{}
	}
	s.pending = nil
	for s.live > 0 {
		select {
		case pid := <-s.ready:
			s.grant[pid] <- struct{}{}
		case <-s.done:
			s.live--
		}
	}
}
