package rmr

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the cost-model seam: it decouples *what the simulator counts*
// (RMRs, the paper's complexity measure) from *what each counted operation
// costs* (simulated time). The charge paths in proc.go classify every
// shared-memory operation into an OpClass and ask the memory's CostModel for
// a simulated-time price; the resulting per-process virtual clock
// (Proc.SimTime) flows through Stats, the flight-recorder ring, and the
// JSONL/Chrome-trace/Prometheus exporters. RMR counts themselves are never
// affected: cost is observe-only, never control flow (asserted by the
// registry-wide cost-transparency conformance subtest).

// OpClass classifies a shared-memory operation for costing purposes. The
// classification is derived from the memory model's coherence bookkeeping at
// charge time, so it is a pure function of the (deterministic) operation
// sequence:
//
//   - an operation that charges no RMR is a ClassLocalHit;
//   - a charged read is a ClassRemoteMiss (CC: the word was not cached here;
//     DSM: the word is remote);
//   - a charged plain write is a ClassInvalidation (CC: it invalidates every
//     other copy; DSM: a remote write);
//   - a charged CAS/F&A/SWAP is a ClassAtomicRMW.
type OpClass uint8

const (
	ClassLocalHit OpClass = iota
	ClassRemoteMiss
	ClassInvalidation
	ClassAtomicRMW

	// NumOpClasses is the number of operation classes; class values are
	// dense in [0, NumOpClasses) and usable as array indices.
	NumOpClasses = 4
)

// String returns the canonical name of the class.
func (c OpClass) String() string {
	switch c {
	case ClassLocalHit:
		return "local-hit"
	case ClassRemoteMiss:
		return "remote-miss"
	case ClassInvalidation:
		return "invalidation"
	case ClassAtomicRMW:
		return "atomic-rmw"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(c))
	}
}

// CostModel prices classified operations in simulated time. Install one with
// Memory.SetCostModel.
//
// Cost is called with the issuing process id and an attempt ordinal that is
// deterministic for that process: for charged operations it is the process's
// cumulative RMR count after the charge (1, 2, 3, … in program order), so on
// any two runs that issue the same per-process operation sequences — gated
// replays, POR exploration, and the free-running structured workloads whose
// RMR counts are already exact — the model sees identical (proc, attempt,
// class) triples and must return identical costs. Sampling from a cost
// distribution therefore has to be keyed on those arguments (seeded hashing,
// as the built-in models do), never on global state or a free-running RNG.
//
// ClassLocalHit calls carry the process's step ordinal instead, which counts
// free-running spin re-reads and is NOT deterministic across interleavings.
// The built-in models price local hits at zero for exactly that reason; a
// custom model that charges hits retains bit-identical replays only under a
// gated (scheduler-driven) run. See docs/LATENCY.md.
//
// Cost must be safe for concurrent use and must not allocate: it is called
// on the operation fast paths.
type CostModel interface {
	// Name identifies the model in reports and artifacts ("unit",
	// "ccnuma", …).
	Name() string
	// Cost returns the simulated cost of one operation, in simulated
	// nanoseconds (the Unit model returns abstract ticks). It must be
	// deterministic in its arguments and must never be negative.
	Cost(proc int, attempt int64, class OpClass) int64
}

// unitModel is today's accounting: every charged operation costs one tick,
// local hits are free. It is the default; Memory stores it as a nil model so
// the op fast paths stay byte-for-byte identical to the pre-seam code.
type unitModel struct{}

func (unitModel) Name() string { return "unit" }

func (unitModel) Cost(_ int, _ int64, class OpClass) int64 {
	if class == ClassLocalHit {
		return 0
	}
	return 1
}

// Unit is the default cost model: one simulated tick per charged operation,
// zero for local hits. Under Unit, Proc.SimTime equals Proc.RMRs.
var Unit CostModel = unitModel{}

// costHash is a splitmix64-style mix of (seed, proc, attempt, class). It is
// the only randomness source of the built-in models, so equal inputs give
// equal costs on every platform.
func costHash(seed uint64, proc int, attempt int64, class OpClass) uint64 {
	x := seed
	x ^= uint64(proc) * 0x9e3779b97f4a7c15
	x ^= uint64(attempt) * 0xbf58476d1ce4e5b9
	x ^= uint64(class) * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// quantileSlots is the resolution of a quantileModel's per-class cost table.
const quantileSlots = 8

// quantileModel draws each operation's cost from a fixed per-class table of
// quantileSlots values, indexed by costHash — deterministic seeded quantile
// sampling with no state and no allocation.
type quantileModel struct {
	name string
	seed uint64
	q    [NumOpClasses][quantileSlots]int64
	max  [NumOpClasses]int64 // 0 ⇒ the class is free; skips hashing
}

func (m *quantileModel) Name() string { return m.name }

func (m *quantileModel) Cost(proc int, attempt int64, class OpClass) int64 {
	if m.max[class] == 0 {
		return 0
	}
	return m.q[class][costHash(m.seed, proc, attempt, class)%quantileSlots]
}

// jitterPct spreads a base latency into quantileSlots quantiles (roughly
// p6…p99 of a right-skewed distribution): the same base cost never repeats
// exactly, which keeps simulated percentiles informative, while staying a
// pure table lookup.
var jitterPct = [quantileSlots]int64{82, 90, 95, 100, 104, 112, 130, 170}

func jittered(base int64) [quantileSlots]int64 {
	var q [quantileSlots]int64
	for i, pct := range jitterPct {
		q[i] = base * pct / 100
	}
	return q
}

func (m *quantileModel) setClass(class OpClass, q [quantileSlots]int64) {
	m.q[class] = q
	m.max[class] = 0
	for _, v := range q {
		if v > m.max[class] {
			m.max[class] = v
		}
	}
}

// CCNumaConfig describes the NUMA topology priced by the CCNuma model. All
// latencies are simulated nanoseconds for the median case; each is spread
// into deterministic jitter quantiles.
type CCNumaConfig struct {
	// Sockets is the number of NUMA domains. A cache miss is served from
	// the local socket with probability 1/Sockets and from a remote socket
	// otherwise (home-node placement is uniform under the simulator's flat
	// address space).
	Sockets int
	// LocalMissNS is the median cost of a miss served within the socket
	// (last-level cache or local DRAM).
	LocalMissNS int64
	// RemoteMissNS is the median cost of a miss served from a remote
	// socket (QPI/UPI hop + remote DRAM or cache-to-cache transfer).
	RemoteMissNS int64
	// InvalidationNS is the median cost of a store that must invalidate
	// remote copies (ownership upgrade + cross-socket invalidations).
	InvalidationNS int64
	// RMWNS is the median cost of an atomic read-modify-write that misses
	// (locked bus transaction on an owned-elsewhere line).
	RMWNS int64
}

// DefaultCCNuma is the topology used by NewCCNuma: a 4-socket box with
// published-order-of-magnitude Xeon-class latencies.
var DefaultCCNuma = CCNumaConfig{
	Sockets:        4,
	LocalMissNS:    90,
	RemoteMissNS:   240,
	InvalidationNS: 150,
	RMWNS:          120,
}

// NewCCNuma returns the built-in cache-coherent NUMA cost model with the
// DefaultCCNuma topology, seeded for quantile sampling. Equal seeds give
// bit-identical costs; local hits are free (see CostModel).
func NewCCNuma(seed int64) CostModel {
	return NewCCNumaConfig(DefaultCCNuma, seed)
}

// NewCCNumaConfig returns a CCNuma model over an explicit topology.
func NewCCNumaConfig(cfg CCNumaConfig, seed int64) CostModel {
	if cfg.Sockets < 1 {
		cfg.Sockets = 1
	}
	m := &quantileModel{name: "ccnuma", seed: uint64(seed)}
	// The remote-miss table mixes local- and remote-socket service times in
	// a 1:(Sockets-1) ratio: slot i below localSlots prices a same-socket
	// miss, the rest a cross-socket one.
	localSlots := quantileSlots / cfg.Sockets
	if localSlots < 1 {
		localSlots = 1
	}
	if cfg.Sockets == 1 {
		localSlots = quantileSlots
	}
	lq, rq := jittered(cfg.LocalMissNS), jittered(cfg.RemoteMissNS)
	var miss [quantileSlots]int64
	for i := range miss {
		if i < localSlots {
			miss[i] = lq[i]
		} else {
			miss[i] = rq[i]
		}
	}
	m.setClass(ClassRemoteMiss, miss)
	m.setClass(ClassInvalidation, jittered(cfg.InvalidationNS))
	m.setClass(ClassAtomicRMW, jittered(cfg.RMWNS))
	return m
}

// DsmRemoteConfig describes the network priced by the DsmRemote model:
// every remote reference crosses an interconnect (RDMA-class latencies).
type DsmRemoteConfig struct {
	// ReadNS is the median cost of a remote read (one round trip).
	ReadNS int64
	// WriteNS is the median cost of a remote write.
	WriteNS int64
	// RMWNS is the median cost of a remote atomic (fetch-add/CAS verbs).
	RMWNS int64
}

// DefaultDsmRemote is the network used by NewDsmRemote: RDMA-order
// microsecond-scale remote references.
var DefaultDsmRemote = DsmRemoteConfig{
	ReadNS:  1500,
	WriteNS: 1700,
	RMWNS:   2400,
}

// NewDsmRemote returns the built-in distributed-shared-memory cost model
// with the DefaultDsmRemote network, seeded for quantile sampling.
func NewDsmRemote(seed int64) CostModel {
	return NewDsmRemoteConfig(DefaultDsmRemote, seed)
}

// NewDsmRemoteConfig returns a DsmRemote model over an explicit network.
func NewDsmRemoteConfig(cfg DsmRemoteConfig, seed int64) CostModel {
	m := &quantileModel{name: "dsmremote", seed: uint64(seed)}
	m.setClass(ClassRemoteMiss, jittered(cfg.ReadNS))
	m.setClass(ClassInvalidation, jittered(cfg.WriteNS))
	m.setClass(ClassAtomicRMW, jittered(cfg.RMWNS))
	return m
}

// CostModelNames lists the built-in cost model names accepted by
// NewCostModel, in stable order.
func CostModelNames() []string {
	return []string{"unit", "ccnuma", "dsmremote"}
}

// NewCostModel constructs a built-in cost model by name ("unit", "ccnuma",
// "dsmremote"; the empty string means "unit"). seed keys the quantile
// sampling of the non-unit models and is ignored by Unit.
func NewCostModel(name string, seed int64) (CostModel, error) {
	switch strings.ToLower(name) {
	case "", "unit":
		return Unit, nil
	case "ccnuma":
		return NewCCNuma(seed), nil
	case "dsmremote":
		return NewDsmRemote(seed), nil
	default:
		return nil, fmt.Errorf("rmr: unknown cost model %q (have %s)",
			name, strings.Join(CostModelNames(), ", "))
	}
}

// SimQuantile returns the q-quantile (0 < q <= 1, nearest-rank) of a set of
// simulated durations, without modifying the input. It returns 0 for an
// empty set.
func SimQuantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q*float64(len(s)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
