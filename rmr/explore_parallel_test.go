package rmr

import (
	"errors"
	"fmt"
	"slices"
	"testing"
)

// spinLockBodyGo is spinLockBody with processes launched through Go
// instead of GoProc. The two launch paths must explore identical trees.
func spinLockBodyGo(s *Scheduler, maxSteps int) error {
	const procs = 3
	m := NewMemory(CC, procs, s)
	lock := m.Alloc(0)
	count := m.Alloc(0)
	for i := 0; i < procs; i++ {
		p := m.Proc(i)
		s.Go(func() {
			for !p.CAS(lock, 0, 1) {
				if p.AbortSignal() {
					return
				}
			}
			p.FAA(count, 1)
			p.Write(lock, 0)
		})
	}
	if err := s.Run(maxSteps); err != nil {
		for i := 0; i < procs; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return err
	}
	if got := m.Peek(count); got != procs {
		return fmt.Errorf("count = %d, want %d", got, procs)
	}
	return nil
}

// buggyLockBody is a deliberately broken test-and-set lock (the test and
// the set are separate steps), used to check that parallel exploration
// reports the same — lexicographically smallest — violating schedule the
// sequential search finds first.
func buggyLockBody(s *Scheduler, maxSteps int) error {
	const procs = 2
	m := NewMemory(CC, procs, s)
	lock := m.Alloc(0)
	inCS := m.Alloc(0)
	bad := m.Alloc(0)
	for i := 0; i < procs; i++ {
		p := m.Proc(i)
		s.GoProc(i, func() {
			for p.Read(lock) != 0 {
				if p.AbortSignal() {
					return
				}
			}
			p.Write(lock, 1) // too late: another tester may be past the gate
			if p.FAA(inCS, 1) > 0 {
				p.Write(bad, 1)
			}
			p.FAA(inCS, ^uint64(0))
			p.Write(lock, 0)
		})
	}
	if err := s.Run(maxSteps); err != nil {
		for i := 0; i < procs; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return err
	}
	if m.Peek(bad) != 0 {
		return errors.New("mutual exclusion violated")
	}
	return nil
}

// TestParallelEquivalence: an uncapped parallel exploration must produce
// exactly the sequential Result — same Explored, same Pruned, same
// Exhausted — at every worker count, for both launch styles.
func TestParallelEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		body     Body
		maxSteps int
	}{
		{"spinlock-goproc", spinLockBody, 11},
		{"spinlock-go", spinLockBodyGo, 11},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := &Explorer{MaxSteps: tc.maxSteps}
			want, err := seq.Run(3, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			if want.Explored == 0 {
				t.Fatal("sequential run explored nothing")
			}
			for _, workers := range []int{2, 4, 8} {
				par := &Explorer{MaxSteps: tc.maxSteps, Workers: workers}
				got, err := par.Run(3, tc.body)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !resultsEqual(got, want) {
					t.Errorf("workers=%d: Result = %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

// TestGoAndGoProcEquivalent: the deferred-start launch path must explore
// the same tree as plain Go launches for a body that touches nothing
// shared before its first gated operation.
func TestGoAndGoProcEquivalent(t *testing.T) {
	a := &Explorer{MaxSteps: 11}
	ra, err := a.Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	b := &Explorer{MaxSteps: 11}
	rb, err := b.Run(3, spinLockBodyGo)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(ra, rb) {
		t.Fatalf("GoProc result %+v != Go result %+v", ra, rb)
	}
}

// resultsEqual compares Results including the depth histogram, which must
// itself be deterministic for uncapped runs at any worker count.
func resultsEqual(a, b Result) bool {
	return a.Explored == b.Explored && a.Pruned == b.Pruned &&
		a.Equivalent == b.Equivalent && a.VisitedHits == b.VisitedHits &&
		a.SymmetryCuts == b.SymmetryCuts && a.Exhausted == b.Exhausted &&
		a.VisitedSaturated == b.VisitedSaturated &&
		slices.Equal(a.Depths, b.Depths)
}

// TestParallelViolationDeterministic: on a buggy body the parallel search
// must report the very schedule the sequential DFS finds first — the
// lexicographically smallest violation — at every worker count.
func TestParallelViolationDeterministic(t *testing.T) {
	const maxSteps = 12
	seq := &Explorer{MaxSteps: maxSteps}
	_, err := seq.Run(2, buggyLockBody)
	var want *ErrExplore
	if !errors.As(err, &want) {
		t.Fatalf("sequential run found no violation: %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		par := &Explorer{MaxSteps: maxSteps, Workers: workers}
		_, err := par.Run(2, buggyLockBody)
		var got *ErrExplore
		if !errors.As(err, &got) {
			t.Fatalf("workers=%d: no violation: %v", workers, err)
		}
		if fmt.Sprint(got.Schedule) != fmt.Sprint(want.Schedule) {
			t.Errorf("workers=%d: schedule %v, want %v", workers, got.Schedule, want.Schedule)
		}
		// Replaying the reported schedule must reproduce the violation.
		rp := newReplayer(2, exploreConfig{maxSteps: maxSteps, red: NoReduction})
		if rerr := rp.run(got.Schedule, buggyLockBody, maxSteps); rerr == nil {
			t.Errorf("workers=%d: reported schedule does not reproduce", workers)
		}
		rp.close()
	}
}
