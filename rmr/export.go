package rmr

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// exported event formats. Both exporters take the label table (Memory.Labels)
// so that events carry resolved label names rather than bare ids.

func labelName(labels []string, id int32) string {
	if id <= 0 || int(id) >= len(labels) {
		return ""
	}
	return labels[id]
}

// jsonlEvent is the JSONL export schema: one object per line, stable field
// names, phase and label resolved to strings.
type jsonlEvent struct {
	Time  int64  `json:"t"`
	Proc  int    `json:"proc"`
	Op    string `json:"op"`
	Addr  int32  `json:"addr"`
	Old   uint64 `json:"old"`
	New   uint64 `json:"new"`
	OK    bool   `json:"ok"`
	RMR   bool   `json:"rmr"`
	Phase string `json:"phase,omitempty"`
	Label string `json:"label,omitempty"`
	// Cost and STime carry the cost model's simulated-time accounting
	// (Event.Cost / Event.STime); omitted when zero so unit-model traces
	// stay compact.
	Cost  int64 `json:"cost,omitempty"`
	STime int64 `json:"stime,omitempty"`
}

// WriteJSONL writes events as JSON Lines: one self-describing object per
// event, suitable for jq/pandas-style offline analysis. OpPhase events
// carry the previous and new phase in old/new and the new phase name in
// the phase field.
func WriteJSONL(w io.Writer, events []Event, labels []string) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		je := jsonlEvent{
			Time: ev.Time, Proc: ev.Proc, Op: ev.Op.String(), Addr: int32(ev.Addr),
			Old: ev.Old, New: ev.New, OK: ev.OK, RMR: ev.RMR,
			Phase: ev.Phase.String(), Label: labelName(labels, ev.Label),
			Cost: ev.Cost, STime: ev.STime,
		}
		if ev.Phase == PhaseIdle {
			je.Phase = ""
		}
		if ev.Op == OpPhase {
			je.Phase = Phase(ev.New).String()
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), loadable by Perfetto and chrome://tracing. Only the fields the
// exporter uses are declared.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events in the Chrome trace-event JSON format:
// each process is a thread (tid) of one synthetic pid, passage phases
// become complete ("X") spans named after the phase, and every memory
// operation becomes a span nested inside its phase, with address, values,
// RMR charge, simulated cost, and label in args. Each thread's timeline is
// the process's simulated clock (Event.STime, see Memory.SetCostModel): an
// operation spans [STime−Cost, STime], so spans have real simulated
// durations — nanoseconds under the built-in non-unit cost models, RMR
// ticks under the default Unit model, where a charged op renders as a
// unit-duration span exactly as before. Load the output at
// https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event, labels []string) error {
	type open struct {
		phase Phase
		since int64 // phase start on the process's simulated clock
	}
	spans := map[int]open{}
	procs := map[int]bool{}
	last := map[int]int64{} // per-proc simulated-clock high-water mark
	var out []chromeEvent
	for _, ev := range events {
		if ev.STime > last[ev.Proc] {
			last[ev.Proc] = ev.STime
		}
		procs[ev.Proc] = true
		if ev.Op == OpPhase {
			if o, ok := spans[ev.Proc]; ok && o.phase != PhaseIdle {
				out = append(out, chromeEvent{
					Name: o.phase.String(), Cat: "phase", Ph: "X",
					TS: o.since, Dur: ev.STime - o.since, PID: 0, TID: ev.Proc,
				})
			}
			spans[ev.Proc] = open{phase: Phase(ev.New), since: ev.STime}
			continue
		}
		name := ev.Op.String()
		if l := labelName(labels, ev.Label); l != "" {
			name += " " + l
		}
		args := map[string]any{
			"addr": int32(ev.Addr), "old": ev.Old, "new": ev.New, "rmr": ev.RMR,
		}
		if ev.Cost != 0 {
			args["cost"] = ev.Cost
		}
		if !ev.OK {
			args["failed"] = true
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "op", Ph: "X",
			TS: ev.STime - ev.Cost, Dur: ev.Cost, PID: 0, TID: ev.Proc, Args: args,
		})
	}
	// Close spans still open at the end of the trace, then name the
	// threads after the simulated processes — both in proc order so the
	// output is deterministic.
	ids := make([]int, 0, len(procs))
	for proc := range procs {
		ids = append(ids, proc)
	}
	sort.Ints(ids)
	for _, proc := range ids {
		if o, ok := spans[proc]; ok && o.phase != PhaseIdle {
			out = append(out, chromeEvent{
				Name: o.phase.String(), Cat: "phase", Ph: "X",
				TS: o.since, Dur: last[proc] + 1 - o.since, PID: 0, TID: proc,
			})
		}
	}
	for _, proc := range ids {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: proc,
			Args: map[string]any{"name": "proc " + strconv.Itoa(proc)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
