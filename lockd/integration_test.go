package lockd_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"sublock/lockd"
	"sublock/lockd/client"
)

// TestHelperHoldLock is not a test: it is the body of the crashing holder
// subprocess. Gated on LOCKD_HELPER_ADDR so normal runs skip it. It
// acquires the victim lock, reports the fencing token on stdout, then
// hangs until the parent kills it -9 — a real client crash, with no
// deferred release and no TCP FIN for the server to notice.
func TestHelperHoldLock(t *testing.T) {
	addr := os.Getenv("LOCKD_HELPER_ADDR")
	if addr == "" {
		t.Skip("helper process body; run via TestKillNineHolderLosesLock")
	}
	cl := client.New(addr)
	ls, err := cl.Acquire(context.Background(), "victim", 400*time.Millisecond, 2*time.Second)
	if err != nil {
		fmt.Printf("HELPER_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("TOKEN=%d\n", ls.Token)
	os.Stdout.Sync()
	time.Sleep(30 * time.Second) // killed long before this elapses
}

// TestKillNineHolderLosesLock is the end-to-end crashed-holder drill: a
// subprocess acquires a lease over HTTP and is SIGKILLed mid-hold. The
// lease must lapse at TTL (sweeper reclaim), the next acquirer must get a
// larger fencing token, and a replayed release under the dead holder's
// token must be rejected.
func TestKillNineHolderLosesLock(t *testing.T) {
	s := lockd.New(lockd.Config{SweepInterval: 10 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperHoldLock$", "-test.v")
	cmd.Env = append(os.Environ(), "LOCKD_HELPER_ADDR="+ts.URL)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the subprocess to report its token.
	tokenc := make(chan uint64, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "TOKEN="); ok {
				n, err := strconv.ParseUint(v, 10, 64)
				if err == nil {
					tokenc <- n
				}
				return
			}
			if strings.HasPrefix(line, "HELPER_ERR=") {
				t.Error(line)
				return
			}
		}
	}()
	var deadToken uint64
	select {
	case deadToken = <-tokenc:
	case <-time.After(10 * time.Second):
		t.Fatal("helper subprocess never reported its token")
	}

	// kill -9: no release, no graceful connection teardown.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The next acquirer is granted the lock once the 400ms lease lapses.
	cl := client.New(ts.URL)
	start := time.Now()
	ls, err := cl.Acquire(context.Background(), "victim", 10*time.Second, 5*time.Second)
	if err != nil {
		t.Fatalf("acquire after kill: %v", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("reclaim took %v, want promptly after the 400ms TTL", waited)
	}
	if ls.Token <= deadToken {
		t.Fatalf("post-crash token %d not above dead holder's %d", ls.Token, deadToken)
	}

	// A replay of the dead holder's release must be fenced out.
	stale := &client.Lease{Name: "victim", Token: deadToken}
	if err := cl.Release(context.Background(), stale); !errors.Is(err, client.ErrStale) {
		t.Fatalf("stale release = %v, want client.ErrStale", err)
	}

	st := s.Stats()
	if st.Expiries < 1 {
		t.Errorf("Stats().Expiries = %d, want >= 1 (the reclaimed lease)", st.Expiries)
	}
	if st.FencingRejects < 1 {
		t.Errorf("Stats().FencingRejects = %d, want >= 1 (the replayed release)", st.FencingRejects)
	}
	if err := cl.Release(context.Background(), ls); err != nil {
		t.Fatalf("live release: %v", err)
	}
}
