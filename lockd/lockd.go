// Package lockd is a sharded lock service over the native abortable lock:
// millions of named locks served over HTTP/JSON, hardened against client
// failure. Every acquire returns a lease — a TTL plus a monotonically
// increasing fencing token per name — so a holder that crashes or
// partitions loses the lock at lease expiry and its stale release is
// rejected by token comparison. Acquire waits are bounded-abortable end to
// end: the request context (cancelled by the client, by its disconnect, or
// by server drain) feeds straight into abortable.EnterContext, so a
// vanished waiter is reaped within the paper's bounded abort budget
// instead of leaking a goroutine.
//
// Robustness mechanisms, in the order a request meets them:
//
//   - a global in-flight gate and a per-shard waiter budget shed excess
//     load with 503 + Retry-After instead of an unbounded goroutine pileup;
//   - names hash (fnv-1a) onto striped shards; each shard lazily
//     instantiates one abortable.Lock + HandlePool per live name and
//     retires idle entries (idle TTL plus an LRU cap), so millions of
//     names stay memory-bounded;
//   - a per-shard expiry sweeper reclaims leases from crashed holders;
//     fencing tokens are drawn from a per-shard monotonic counter, so a
//     token stays comparable across retire/re-create of its name;
//   - Drain stops new acquires, aborts every parked waiter via context
//     cancellation, and waits for in-flight requests under a caller-set
//     deadline.
//
// See docs/LOCKD.md for the API, the lease/fencing semantics, and the
// failure matrix.
package lockd

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"sublock/abortable"
	"sublock/abortable/obs"
)

// Defaults for Config fields left zero.
const (
	DefaultShards            = 16
	DefaultPoolSize          = 8
	DefaultShardWaiterBudget = 1024
	DefaultMaxInFlight       = 8192
	DefaultTTL               = 10 * time.Second
	DefaultMaxTTL            = time.Minute
	DefaultWait              = 5 * time.Second
	DefaultMaxWait           = 30 * time.Second
	DefaultSweepInterval     = 100 * time.Millisecond
	DefaultIdleRetire        = time.Minute
	DefaultMaxLocksPerShard  = 1 << 17
	DefaultRetryAfter        = time.Second
	DefaultWriteTimeout      = 5 * time.Second
)

// Config tunes a Server. The zero value selects the defaults above.
type Config struct {
	// Shards is the number of lock-table stripes. More shards mean less
	// map contention and finer-grained sweepers.
	Shards int
	// PoolSize is the number of abortable handles per named lock: the cap
	// on waiters queued *inside* one lock's doorway. Excess acquirers
	// queue on the handle pool (still context-abortable), so a hot name
	// degrades to FIFO-ish borrow order instead of failing.
	PoolSize int
	// ShardWaiterBudget caps in-flight acquires per shard; excess is shed
	// with 503 + Retry-After. This bounds waiter memory under overload.
	ShardWaiterBudget int
	// MaxInFlight caps in-flight acquire requests across all shards.
	MaxInFlight int
	// TTL is the lease duration used when a request asks for none;
	// MaxTTL clamps requested durations.
	TTL, MaxTTL time.Duration
	// Wait is the acquire wait budget used when a request asks for none;
	// MaxWait clamps requested budgets.
	Wait, MaxWait time.Duration
	// SweepInterval paces each shard's expiry/retirement sweeper.
	SweepInterval time.Duration
	// IdleRetire retires a name's lock after this long unheld and
	// unreferenced, keeping the table bounded by the live working set.
	IdleRetire time.Duration
	// MaxLocksPerShard is the hard cap on live names per shard: at the
	// cap, creating a new name evicts the least-recently-used idle entry,
	// or sheds with 503 when every entry is held or in use.
	MaxLocksPerShard int
	// RetryAfter is the hint returned with 503 responses.
	RetryAfter time.Duration
	// WriteTimeout bounds each HTTP response write, so a slow or stalled
	// client cannot pin a handler goroutine.
	WriteTimeout time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	defD := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Shards, DefaultShards)
	def(&c.PoolSize, DefaultPoolSize)
	def(&c.ShardWaiterBudget, DefaultShardWaiterBudget)
	def(&c.MaxInFlight, DefaultMaxInFlight)
	defD(&c.TTL, DefaultTTL)
	defD(&c.MaxTTL, DefaultMaxTTL)
	defD(&c.Wait, DefaultWait)
	defD(&c.MaxWait, DefaultMaxWait)
	defD(&c.SweepInterval, DefaultSweepInterval)
	defD(&c.IdleRetire, DefaultIdleRetire)
	def(&c.MaxLocksPerShard, DefaultMaxLocksPerShard)
	defD(&c.RetryAfter, DefaultRetryAfter)
	defD(&c.WriteTimeout, DefaultWriteTimeout)
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Sentinel errors returned by the service layer; the HTTP layer maps them
// to status codes and machine-readable codes (see http.go), the client
// maps those back.
var (
	// ErrOverloaded: the global gate or a shard's waiter budget is full.
	ErrOverloaded = errors.New("lockd: overloaded, retry later")
	// ErrTableFull: the shard is at its lock-table cap with nothing
	// evictable (every entry held or in use).
	ErrTableFull = errors.New("lockd: lock table full, retry later")
	// ErrDraining: the server is shutting down.
	ErrDraining = errors.New("lockd: draining")
	// ErrWaitTimeout: the acquire wait budget elapsed before the grant.
	ErrWaitTimeout = errors.New("lockd: wait budget elapsed")
	// ErrStale: the release/renew token does not match the current lease
	// — the fencing rejection.
	ErrStale = errors.New("lockd: stale fencing token")
	// ErrExpired: the token matched but the lease had already expired;
	// the lock was (or is now) reclaimed.
	ErrExpired = errors.New("lockd: lease expired")
	// ErrUnknown: no live lock under that name (never held, or retired).
	ErrUnknown = errors.New("lockd: unknown lock")
	// ErrBadName: empty or oversized lock name.
	ErrBadName = errors.New("lockd: invalid lock name")
)

// MaxNameLen bounds lock names; longer names are rejected, not truncated.
const MaxNameLen = 512

// Lease is a granted acquisition: the holder owns name until Expiry
// unless renewed, and must present Token to release or renew. Tokens are
// monotonically increasing per name — a downstream resource that records
// the largest token it has seen can fence out writes from stale holders.
type Lease struct {
	Name   string
	Token  uint64
	TTL    time.Duration
	Expiry time.Time
}

// entry is one live named lock: the abortable lock + handle pool that
// provide mutual exclusion and queueing, and the lease state layered on
// top. refs counts in-flight requests touching the entry (retirement is
// refused while it is nonzero); lastUse drives idle retirement and LRU
// eviction.
type entry struct {
	name    string
	lock    *abortable.Lock
	pool    *abortable.HandlePool
	refs    atomic.Int64
	lastUse atomic.Int64 // unix nanos

	mu     sync.Mutex // guards the lease fields below
	held   bool
	token  uint64
	expiry time.Time
	handle *abortable.Handle // the handle holding the lock while held
}

func (e *entry) touch(now time.Time) { e.lastUse.Store(now.UnixNano()) }

// shard is one stripe of the lock table, with its own fencing counter,
// waiter budget, sweeper, and metrics. Lock order: shard.mu before
// entry.mu; nothing takes shard.mu while holding an entry.mu.
type shard struct {
	id      int
	entries map[string]*entry
	mu      sync.Mutex

	fence   atomic.Uint64 // monotonic fencing-token source (per shard)
	waiting atomic.Int64  // in-flight acquires (budget usage)
	held    atomic.Int64  // currently held leases

	acquires       atomic.Int64
	timeouts       atomic.Int64
	sheds          atomic.Int64
	expiries       atomic.Int64
	fencingRejects atomic.Int64
	releases       atomic.Int64
	renews         atomic.Int64
	retired        atomic.Int64

	met *obs.Metrics // shared by every entry's lock in this shard
}

// Server is the lock service. Create with New, serve the Handler, and
// shut down with Drain then Close.
type Server struct {
	cfg    Config
	shards []*shard

	inflight    atomic.Int64
	globalSheds atomic.Int64
	draining    atomic.Bool

	drainCtx    context.Context
	drainCancel context.CancelFunc

	obsReg    *obs.Registry
	sweepStop chan struct{}
	sweepDone sync.WaitGroup
	closeOnce sync.Once
	start     time.Time
}

// New creates a Server and starts its per-shard expiry sweepers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		obsReg:    obs.NewRegistry(),
		sweepStop: make(chan struct{}),
		start:     cfg.now(),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	for i := range s.shards {
		m := obs.New(fmt.Sprintf("shard%02d", i), obs.Config{})
		s.obsReg.MustRegister(m)
		s.shards[i] = &shard{id: i, entries: map[string]*entry{}, met: m}
	}
	s.sweepDone.Add(1)
	go s.sweeper()
	return s
}

// Close stops the sweepers. It does not drain; call Drain first for a
// graceful shutdown. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.drainCancel() // release any stragglers even if Drain was skipped
		close(s.sweepStop)
	})
	s.sweepDone.Wait()
}

// Drain gracefully shuts the service down: new acquires are shed with
// ErrDraining, every waiter parked in an acquire is aborted via context
// cancellation (the paper's bounded abort, so the reap is prompt), and
// Drain returns once no request is in flight — or ctx's deadline expires
// first, in which case the deadline error is returned with whatever
// in-flight count remains. Held leases are not revoked; their holders are
// expected to fail over and let the leases lapse.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainCancel()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("lockd: drain deadline with %d request(s) in flight: %w",
				s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// shardOf maps a name onto its stripe with fnv-1a.
func (s *Server) shardOf(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

func checkName(name string) error {
	if name == "" || len(name) > MaxNameLen {
		return ErrBadName
	}
	return nil
}

// clamp returns v bounded into (0, max], substituting def for zero.
func clamp(v, def, max time.Duration) time.Duration {
	if v <= 0 {
		v = def
	}
	if v > max {
		v = max
	}
	return v
}

// Acquire obtains the named lock, blocking until granted or until ctx is
// cancelled, wait elapses, or the server drains. A zero ttl or wait
// selects the configured default; both are clamped to their maxima. On
// success the returned lease is held until released with its token,
// renewed, or reclaimed at expiry.
func (s *Server) Acquire(ctx context.Context, name string, ttl, wait time.Duration) (Lease, error) {
	if err := checkName(name); err != nil {
		return Lease{}, err
	}
	if s.draining.Load() {
		return Lease{}, ErrDraining
	}
	// Global in-flight gate: shed rather than queue without bound.
	if s.inflight.Add(1) > int64(s.cfg.MaxInFlight) {
		s.inflight.Add(-1)
		s.globalSheds.Add(1)
		return Lease{}, ErrOverloaded
	}
	defer s.inflight.Add(-1)

	sh := s.shardOf(name)
	if sh.waiting.Add(1) > int64(s.cfg.ShardWaiterBudget) {
		sh.waiting.Add(-1)
		sh.sheds.Add(1)
		return Lease{}, ErrOverloaded
	}
	defer sh.waiting.Add(-1)

	e, err := s.entryFor(sh, name)
	if err != nil {
		sh.sheds.Add(1)
		return Lease{}, err
	}
	defer func() {
		e.touch(s.cfg.now())
		e.refs.Add(-1)
	}()

	ttl = clamp(ttl, s.cfg.TTL, s.cfg.MaxTTL)
	wait = clamp(wait, s.cfg.Wait, s.cfg.MaxWait)

	// The wait context merges three abort sources: the caller's context
	// (client cancel or disconnect), the wait budget, and server drain.
	// All three funnel into abortable.EnterContext, so a parked waiter is
	// unparked and reaped within the bounded abort budget.
	actx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	h, err := e.pool.EnterContext(actx)
	if err != nil {
		switch {
		case s.draining.Load():
			return Lease{}, ErrDraining
		case ctx.Err() != nil:
			return Lease{}, ctx.Err() // client cancelled or disconnected
		default:
			sh.timeouts.Add(1)
			return Lease{}, ErrWaitTimeout
		}
	}

	now := s.cfg.now()
	tok := sh.fence.Add(1)
	e.mu.Lock()
	e.held = true
	e.token = tok
	e.expiry = now.Add(ttl)
	e.handle = h
	e.mu.Unlock()
	sh.held.Add(1)
	sh.acquires.Add(1)
	return Lease{Name: name, Token: tok, TTL: ttl, Expiry: now.Add(ttl)}, nil
}

// Release gives the named lock up. The token must match the current
// lease: a stale token — an earlier holder whose lease expired and was
// reclaimed, or a duplicate release — is rejected with ErrStale. A
// matching token on an already-expired lease reclaims the lock
// immediately but still reports ErrExpired, so a holder that outlived its
// lease learns it may have lost mutual exclusion.
func (s *Server) Release(name string, token uint64) error {
	e, sh, err := s.liveEntry(name)
	if err != nil {
		return err
	}
	defer func() {
		e.touch(s.cfg.now())
		e.refs.Add(-1)
	}()
	e.mu.Lock()
	if !e.held || e.token != token {
		e.mu.Unlock()
		sh.fencingRejects.Add(1)
		return ErrStale
	}
	h := e.handle
	expired := s.cfg.now().After(e.expiry)
	e.held = false
	e.handle = nil
	e.mu.Unlock()
	sh.held.Add(-1)
	e.pool.Release(h)
	if expired {
		sh.expiries.Add(1)
		sh.fencingRejects.Add(1)
		return ErrExpired
	}
	sh.releases.Add(1)
	return nil
}

// Renew extends the current lease by ttl from now. The token must match
// and the lease must not have expired.
func (s *Server) Renew(name string, token uint64, ttl time.Duration) (Lease, error) {
	ttl = clamp(ttl, s.cfg.TTL, s.cfg.MaxTTL)
	e, sh, err := s.liveEntry(name)
	if err != nil {
		return Lease{}, err
	}
	defer func() {
		e.touch(s.cfg.now())
		e.refs.Add(-1)
	}()
	now := s.cfg.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.held || e.token != token {
		sh.fencingRejects.Add(1)
		return Lease{}, ErrStale
	}
	if now.After(e.expiry) {
		// Expired but not yet swept: leave the reclaim to the sweeper (or
		// a release); the renew just fails.
		sh.fencingRejects.Add(1)
		return Lease{}, ErrExpired
	}
	e.expiry = now.Add(ttl)
	sh.renews.Add(1)
	return Lease{Name: name, Token: token, TTL: ttl, Expiry: e.expiry}, nil
}

// Info is one name's Inspect snapshot.
type Info struct {
	Name    string
	Held    bool
	Token   uint64        // current lease token, when held
	Remain  time.Duration // lease time remaining, when held
	Waiters int64         // acquires currently in flight on the shard
}

// Inspect reports the named lock's state; ok is false for unknown names.
func (s *Server) Inspect(name string) (Info, bool) {
	e, sh, err := s.liveEntry(name)
	if err != nil {
		return Info{}, false
	}
	defer e.refs.Add(-1)
	e.mu.Lock()
	info := Info{Name: name, Held: e.held, Waiters: sh.waiting.Load()}
	if e.held {
		info.Token = e.token
		info.Remain = e.expiry.Sub(s.cfg.now())
	}
	e.mu.Unlock()
	return info, true
}

// liveEntry pins the existing entry for name (refs incremented; the
// caller must decrement) or reports ErrUnknown/ErrBadName.
func (s *Server) liveEntry(name string) (*entry, *shard, error) {
	if err := checkName(name); err != nil {
		return nil, nil, err
	}
	sh := s.shardOf(name)
	sh.mu.Lock()
	e := sh.entries[name]
	if e == nil {
		sh.mu.Unlock()
		return nil, nil, ErrUnknown
	}
	e.refs.Add(1)
	sh.mu.Unlock()
	return e, sh, nil
}

// entryFor pins the entry for name, creating it if absent. At the
// lock-table cap it evicts the least-recently-used idle entry; with
// nothing evictable the create is shed with ErrTableFull.
func (s *Server) entryFor(sh *shard, name string) (*entry, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[name]; e != nil {
		e.refs.Add(1)
		return e, nil
	}
	if len(sh.entries) >= s.cfg.MaxLocksPerShard && !sh.evictLRU() {
		return nil, ErrTableFull
	}
	lk := abortable.New(abortable.Config{MaxHandles: s.cfg.PoolSize})
	lk.SetObserver(sh.met)
	pool, err := abortable.NewHandlePool(lk, s.cfg.PoolSize)
	if err != nil {
		return nil, err // unreachable with a validated PoolSize
	}
	e := &entry{name: name, lock: lk, pool: pool}
	e.touch(s.cfg.now())
	e.refs.Add(1)
	sh.entries[name] = e
	return e, nil
}

// evictLRU removes the least-recently-used idle entry (unheld,
// unreferenced), reporting whether an eviction happened. Caller holds
// sh.mu.
func (sh *shard) evictLRU() bool {
	var victim *entry
	for _, e := range sh.entries {
		if e.refs.Load() != 0 {
			continue
		}
		e.mu.Lock()
		held := e.held
		e.mu.Unlock()
		if held {
			continue
		}
		if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(sh.entries, victim.name)
	sh.retired.Add(1)
	return true
}

// sweeper drives every shard's expiry reclaim and idle retirement until
// Close.
func (s *Server) sweeper() {
	defer s.sweepDone.Done()
	tick := time.NewTicker(s.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-tick.C:
			now := s.cfg.now()
			for _, sh := range s.shards {
				s.sweepShard(sh, now)
			}
		}
	}
}

// sweepShard reclaims expired leases and retires idle entries in one
// shard. Reclaiming calls pool.Release (which hands the lock to the next
// queued waiter) outside both mutexes.
func (s *Server) sweepShard(sh *shard, now time.Time) {
	sh.mu.Lock()
	live := make([]*entry, 0, len(sh.entries))
	for _, e := range sh.entries {
		live = append(live, e)
	}
	sh.mu.Unlock()

	for _, e := range live {
		e.mu.Lock()
		if e.held && now.After(e.expiry) {
			h := e.handle
			e.held = false
			e.handle = nil
			e.mu.Unlock()
			sh.held.Add(-1)
			sh.expiries.Add(1)
			e.pool.Release(h)
			continue
		}
		e.mu.Unlock()
	}

	// Idle retirement: drop entries unheld and unreferenced past the idle
	// TTL. refs is checked under sh.mu, the same lock entryFor pins under,
	// so a concurrent acquire either pinned first (skip) or will re-create.
	cutoff := now.Add(-s.cfg.IdleRetire).UnixNano()
	sh.mu.Lock()
	for name, e := range sh.entries {
		if e.refs.Load() != 0 || e.lastUse.Load() > cutoff {
			continue
		}
		e.mu.Lock()
		held := e.held
		e.mu.Unlock()
		if held {
			continue
		}
		delete(sh.entries, name)
		sh.retired.Add(1)
	}
	sh.mu.Unlock()
}

// Stats is a point-in-time aggregate snapshot across all shards.
type Stats struct {
	Shards   int
	Locks    int   // live named locks
	Held     int64 // held leases
	Waiting  int64 // in-flight acquires
	InFlight int64 // in-flight requests (global gate usage)
	Draining bool

	Acquires       int64
	Timeouts       int64
	Sheds          int64 // shard-budget + table-full sheds
	GlobalSheds    int64 // global-gate sheds
	Expiries       int64
	FencingRejects int64
	Releases       int64
	Renews         int64
	Retired        int64
}

// Stats aggregates the per-shard counters. Values are individually atomic
// snapshots and may be mutually skewed under load.
func (s *Server) Stats() Stats {
	st := Stats{
		Shards:      len(s.shards),
		InFlight:    s.inflight.Load(),
		GlobalSheds: s.globalSheds.Load(),
		Draining:    s.draining.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Locks += len(sh.entries)
		sh.mu.Unlock()
		st.Held += sh.held.Load()
		st.Waiting += sh.waiting.Load()
		st.Acquires += sh.acquires.Load()
		st.Timeouts += sh.timeouts.Load()
		st.Sheds += sh.sheds.Load()
		st.Expiries += sh.expiries.Load()
		st.FencingRejects += sh.fencingRejects.Load()
		st.Releases += sh.releases.Load()
		st.Renews += sh.renews.Load()
		st.Retired += sh.retired.Load()
	}
	return st
}
