package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func fastCfg() Config {
	return Config{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

// fakeLockd scripts responses: each call pops the next status/body pair.
type fakeLockd struct {
	calls   atomic.Int64
	handler func(n int64, w http.ResponseWriter, r *http.Request)
}

func (f *fakeLockd) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.handler(f.calls.Add(1), w, r)
}

func writeLease(w http.ResponseWriter, token uint64) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(leaseResponse{Name: "n", Token: token, TTLMS: 1000, ExpiresInMS: 1000})
}

func writeCode(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Code: code, Error: code})
}

// TestRetryOn503ThenSuccess: shed responses are retried and the eventual
// grant is surfaced, with the attempt count matching the script.
func TestRetryOn503ThenSuccess(t *testing.T) {
	f := &fakeLockd{handler: func(n int64, w http.ResponseWriter, r *http.Request) {
		if n <= 2 {
			writeCode(w, http.StatusServiceUnavailable, "overloaded")
			return
		}
		writeLease(w, 7)
	}}
	ts := httptest.NewServer(f)
	defer ts.Close()

	cl := New(ts.URL, fastCfg())
	ls, err := cl.Acquire(context.Background(), "n", time.Second, time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if ls.Token != 7 {
		t.Fatalf("token = %d, want 7", ls.Token)
	}
	if got := f.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two sheds then a grant)", got)
	}
}

// TestRetryAfterFloorsBackoff: the server's Retry-After hint raises the
// computed delay; observed wall time proves the client actually waited.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	cl := New("localhost:0", fastCfg())
	const hint = 300 * time.Millisecond
	d := cl.backoff(0, hint)
	if d < hint {
		t.Fatalf("backoff = %v, want >= Retry-After hint %v", d, hint)
	}
	// Jitter adds at most Jitter (default 0.5) of the floored delay.
	if max := hint + time.Duration(float64(hint)*cl.cfg.Jitter); d > max {
		t.Fatalf("backoff = %v, want <= %v", d, max)
	}
	// Without a hint the exponential base applies.
	if d := cl.backoff(0, 0); d < cl.cfg.BaseBackoff {
		t.Fatalf("backoff = %v, want >= base %v", d, cl.cfg.BaseBackoff)
	}
	// Growth is capped at MaxBackoff (plus jitter).
	d = cl.backoff(30, 0)
	if max := cl.cfg.MaxBackoff + time.Duration(float64(cl.cfg.MaxBackoff)*cl.cfg.Jitter); d > max {
		t.Fatalf("backoff(30) = %v, want <= capped %v", d, max)
	}
}

// TestRetriesExhaustedOverloaded: a server that never stops shedding
// yields ErrOverloaded after MaxAttempts, and the Retry-After header is
// respected between tries.
func TestRetriesExhaustedOverloaded(t *testing.T) {
	f := &fakeLockd{handler: func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0") // parses to a zero hint: fast test
		writeCode(w, http.StatusServiceUnavailable, "overloaded")
	}}
	ts := httptest.NewServer(f)
	defer ts.Close()

	cfg := fastCfg()
	cfg.MaxAttempts = 3
	cl := New(ts.URL, cfg)
	_, err := cl.Acquire(context.Background(), "n", time.Second, time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted acquire = %v, want ErrOverloaded", err)
	}
	if got := f.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts = 3", got)
	}
}

func TestDrainingTerminal(t *testing.T) {
	f := &fakeLockd{handler: func(n int64, w http.ResponseWriter, r *http.Request) {
		writeCode(w, http.StatusServiceUnavailable, "draining")
	}}
	ts := httptest.NewServer(f)
	defer ts.Close()

	cl := New(ts.URL, fastCfg())
	_, err := cl.Acquire(context.Background(), "n", time.Second, time.Second)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("draining acquire = %v, want ErrDraining", err)
	}
}

// TestFencingErrorMapping: machine-readable codes map onto the client's
// sentinels without retrying (one call each).
func TestFencingErrorMapping(t *testing.T) {
	cases := []struct {
		status int
		code   string
		want   error
	}{
		{http.StatusConflict, "stale_token", ErrStale},
		{http.StatusConflict, "expired", ErrExpired},
		{http.StatusNotFound, "unknown_lock", ErrUnknown},
		{http.StatusRequestTimeout, "wait_timeout", ErrWaitTimeout},
	}
	for _, tc := range cases {
		f := &fakeLockd{handler: func(n int64, w http.ResponseWriter, r *http.Request) {
			writeCode(w, tc.status, tc.code)
		}}
		ts := httptest.NewServer(f)
		cl := New(ts.URL, fastCfg())
		err := cl.Release(context.Background(), &Lease{Name: "n", Token: 1})
		if !errors.Is(err, tc.want) {
			t.Errorf("code %q: err = %v, want %v", tc.code, err, tc.want)
		}
		if got := f.calls.Load(); got != 1 {
			t.Errorf("code %q: attempts = %d, want 1 (terminal, no retry)", tc.code, got)
		}
		ts.Close()
	}
}

// TestTransportErrorRetriedAndReported: connection failures are retried;
// when they exhaust attempts the underlying cause is preserved.
func TestTransportErrorRetriedAndReported(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens: every attempt is a transport error

	cfg := fastCfg()
	cfg.MaxAttempts = 2
	cl := New(ts.URL, cfg)
	_, err := cl.Acquire(context.Background(), "n", time.Second, time.Second)
	if err == nil {
		t.Fatal("acquire against closed server succeeded")
	}
	if !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("err = %v, want retries-exhausted wrapper", err)
	}
	if !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want underlying transport cause preserved", err)
	}
}

// TestContextCancelStopsRetry: a cancelled context aborts the backoff
// sleep instead of burning the remaining attempts.
func TestContextCancelStopsRetry(t *testing.T) {
	f := &fakeLockd{handler: func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30") // long hint the cancel must beat
		writeCode(w, http.StatusServiceUnavailable, "overloaded")
	}}
	ts := httptest.NewServer(f)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cl := New(ts.URL, fastCfg())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Acquire(ctx, "n", time.Second, time.Second)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for f.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never landed")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not interrupt the backoff sleep")
	}
}

// TestRenewUpdatesLease: a renew rewrites the lease TTL/expiry in place.
func TestRenewUpdatesLease(t *testing.T) {
	f := &fakeLockd{handler: func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(leaseResponse{Name: "n", Token: 4, TTLMS: 5000, ExpiresInMS: 5000})
	}}
	ts := httptest.NewServer(f)
	defer ts.Close()

	cl := New(ts.URL, fastCfg())
	ls := &Lease{Name: "n", Token: 4, TTL: time.Second, Expiry: time.Now()}
	if err := cl.Renew(context.Background(), ls, 5*time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if ls.TTL != 5*time.Second {
		t.Fatalf("TTL = %v, want 5s", ls.TTL)
	}
	if !ls.Expiry.After(time.Now().Add(4 * time.Second)) {
		t.Fatalf("Expiry = %v, want ~5s out", ls.Expiry)
	}
}
