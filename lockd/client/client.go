// Package client is the Go client for the lockd lock service: acquire /
// renew / release with leases and fencing tokens, retrying shed (503)
// responses with exponential backoff plus jitter and honoring the
// server's Retry-After hint.
//
//	cl := client.New("127.0.0.1:7513")
//	ls, err := cl.Acquire(ctx, "orders/42", 10*time.Second, 2*time.Second)
//	if err != nil { ... }
//	defer cl.Release(context.Background(), ls)
//	// guard downstream writes with ls.Token (largest-token-wins fencing)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Wire bodies mirror the lockd HTTP layer (lockd/http.go).
type acquireRequest struct {
	Name   string `json:"name"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

type releaseRequest struct {
	Name  string `json:"name"`
	Token uint64 `json:"token"`
}

type renewRequest struct {
	Name  string `json:"name"`
	Token uint64 `json:"token"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

type leaseResponse struct {
	Name        string `json:"name"`
	Token       uint64 `json:"token"`
	TTLMS       int64  `json:"ttl_ms"`
	ExpiresInMS int64  `json:"expires_in_ms"`
}

type errorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// Lease is a held lock: present Token on release/renew, and forward it to
// fenced downstream resources (largest token wins).
type Lease struct {
	Name   string
	Token  uint64
	TTL    time.Duration
	Expiry time.Time // local-clock estimate: response time + TTL
}

// Errors mapped back from the server's machine-readable codes.
var (
	// ErrStale: the fencing token no longer names the current lease.
	ErrStale = errors.New("lockd client: stale fencing token")
	// ErrExpired: the lease expired before the release/renew landed.
	ErrExpired = errors.New("lockd client: lease expired")
	// ErrUnknown: the server has no live lock under that name.
	ErrUnknown = errors.New("lockd client: unknown lock")
	// ErrWaitTimeout: the acquire wait budget elapsed without a grant.
	ErrWaitTimeout = errors.New("lockd client: wait budget elapsed")
	// ErrOverloaded: the server shed the request and retries ran out.
	ErrOverloaded = errors.New("lockd client: server overloaded")
	// ErrDraining: the server is shutting down and retries ran out.
	ErrDraining = errors.New("lockd client: server draining")
)

// Config tunes a Client. The zero value selects the defaults.
type Config struct {
	// HTTPClient overrides the transport (default: http.Client with a
	// 60s overall timeout as a backstop; per-call contexts bound waits).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call across sheds and transport
	// errors (default 4; 1 disables retry).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 50ms); the
	// server's Retry-After hint raises any computed delay to at least the
	// hinted value. MaxBackoff caps the growth (default 2s).
	BaseBackoff, MaxBackoff time.Duration
	// Jitter is the uniform random fraction added to each delay
	// (default 0.5: delay .. 1.5*delay).
	Jitter float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 60 * time.Second}
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	return c
}

// Client talks to one lockd server. Safe for concurrent use.
type Client struct {
	base string
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a client for addr ("host:port" or a full http:// URL).
func New(addr string, cfg ...Config) *Client {
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		cfg:  c.withDefaults(),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// jittered returns d plus a uniform random fraction of it.
func (c *Client) jittered(d time.Duration) time.Duration {
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	return d + time.Duration(float64(d)*c.cfg.Jitter*f)
}

// backoff computes the delay before retry attempt (0-based), floored at
// the server's Retry-After hint when one was given.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	if retryAfter > d {
		d = retryAfter
	}
	return c.jittered(d)
}

// shedError is a retryable 503 with the server's Retry-After hint.
type shedError struct {
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return fmt.Sprintf("lockd client: %s: %s", e.code, e.msg) }

// terminal converts an exhausted shedError to its caller-facing sentinel.
func (e *shedError) terminal() error {
	if e.code == "draining" {
		return fmt.Errorf("%w: %s", ErrDraining, e.msg)
	}
	return fmt.Errorf("%w: %s", ErrOverloaded, e.msg)
}

// do runs one POST, decoding a 200 into out (when non-nil) and everything
// else into a typed error. A *shedError return is retryable.
func (c *Client) do(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK {
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	var apiErr errorResponse
	json.NewDecoder(resp.Body).Decode(&apiErr) // best-effort; code may stay empty
	if resp.StatusCode == http.StatusServiceUnavailable {
		var ra time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			ra = time.Duration(secs) * time.Second
		}
		return &shedError{code: apiErr.Code, msg: apiErr.Error, retryAfter: ra}
	}
	switch apiErr.Code {
	case "stale_token":
		return ErrStale
	case "expired":
		return ErrExpired
	case "unknown_lock":
		return ErrUnknown
	case "wait_timeout":
		return ErrWaitTimeout
	default:
		return fmt.Errorf("lockd client: %s: %s (%s)", resp.Status, apiErr.Error, apiErr.Code)
	}
}

// transportError marks a connection-level failure as retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// retry runs op under the retry policy: sheds and transport errors back
// off (jittered exponential, floored at Retry-After) and try again until
// MaxAttempts or ctx cancellation; anything else returns immediately.
func (c *Client) retry(ctx context.Context, op func() error) error {
	var lastShed *shedError
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		lastErr = err
		var shed *shedError
		var trans *transportError
		var delay time.Duration
		switch {
		case errors.As(err, &shed):
			lastShed = shed
			delay = c.backoff(attempt, shed.retryAfter)
		case errors.As(err, &trans):
			if ctx.Err() != nil {
				return ctx.Err()
			}
			delay = c.backoff(attempt, 0)
		default:
			return err
		}
		if attempt == c.cfg.MaxAttempts-1 {
			break
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if lastShed != nil {
		return lastShed.terminal()
	}
	return fmt.Errorf("lockd client: retries exhausted: %w", lastErr)
}

// Acquire obtains name, waiting up to wait per attempt (zero selects the
// server default) and holding for ttl. Shed responses are retried with
// backoff; a grant surfaces the lease and its fencing token.
func (c *Client) Acquire(ctx context.Context, name string, ttl, wait time.Duration) (*Lease, error) {
	var lease *Lease
	err := c.retry(ctx, func() error {
		var resp leaseResponse
		if err := c.do(ctx, "/v1/acquire", acquireRequest{
			Name:   name,
			TTLMS:  ttl.Milliseconds(),
			WaitMS: wait.Milliseconds(),
		}, &resp); err != nil {
			return err
		}
		d := time.Duration(resp.TTLMS) * time.Millisecond
		lease = &Lease{Name: resp.Name, Token: resp.Token, TTL: d, Expiry: time.Now().Add(d)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lease, nil
}

// Release gives the lease up. ErrStale / ErrExpired / ErrUnknown mean the
// server already considers this holder gone — mutual exclusion may have
// passed to someone else, and the caller must stop relying on it.
func (c *Client) Release(ctx context.Context, ls *Lease) error {
	return c.retry(ctx, func() error {
		return c.do(ctx, "/v1/release", releaseRequest{Name: ls.Name, Token: ls.Token}, nil)
	})
}

// Renew extends the lease by ttl (zero selects the server default),
// updating ls in place on success.
func (c *Client) Renew(ctx context.Context, ls *Lease, ttl time.Duration) error {
	return c.retry(ctx, func() error {
		var resp leaseResponse
		if err := c.do(ctx, "/v1/renew", renewRequest{
			Name:  ls.Name,
			Token: ls.Token,
			TTLMS: ttl.Milliseconds(),
		}, &resp); err != nil {
			return err
		}
		ls.TTL = time.Duration(resp.TTLMS) * time.Millisecond
		ls.Expiry = time.Now().Add(time.Duration(resp.ExpiresInMS) * time.Millisecond)
		return nil
	})
}
