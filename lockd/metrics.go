package lockd

import (
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"sublock/internal/promtext"
)

// Metrics exposition. Two layers share the /metrics endpoint:
//
//   - lockd_* families below: per-shard held/waiting/table gauges and the
//     robustness counters (lease expiries, sheds, fencing rejections);
//   - the abortable/obs families (abortable_acquire_ns histograms and
//     friends), one collector per shard attached to every named lock in
//     that shard, so acquire-latency histograms come straight off the
//     native lock's observed Enter path.

// shardCounters maps each per-shard counter family to its field.
var shardCounters = []struct {
	name, help string
	get        func(*shard) *atomic.Int64
}{
	{"lockd_acquires_total", "Leases granted.", func(sh *shard) *atomic.Int64 { return &sh.acquires }},
	{"lockd_wait_timeouts_total", "Acquires whose wait budget elapsed.", func(sh *shard) *atomic.Int64 { return &sh.timeouts }},
	{"lockd_shed_total", "Acquires shed by the shard waiter budget or lock-table cap.", func(sh *shard) *atomic.Int64 { return &sh.sheds }},
	{"lockd_lease_expiries_total", "Leases reclaimed at expiry (crashed or partitioned holders).", func(sh *shard) *atomic.Int64 { return &sh.expiries }},
	{"lockd_fencing_rejections_total", "Releases/renews rejected by fencing-token comparison.", func(sh *shard) *atomic.Int64 { return &sh.fencingRejects }},
	{"lockd_releases_total", "Voluntary releases accepted.", func(sh *shard) *atomic.Int64 { return &sh.releases }},
	{"lockd_renews_total", "Lease renewals accepted.", func(sh *shard) *atomic.Int64 { return &sh.renews }},
	{"lockd_locks_retired_total", "Named locks retired (idle TTL or LRU eviction).", func(sh *shard) *atomic.Int64 { return &sh.retired }},
}

// WriteMetrics writes the lockd families followed by the per-shard
// abortable/obs families in Prometheus text exposition format.
func (s *Server) WriteMetrics(w io.Writer) error {
	pw := promtext.NewWriter(w)

	pw.Metric("lockd_held", "Currently held leases per shard.", "gauge")
	for _, sh := range s.shards {
		pw.Sample("lockd_held", shardLabel(sh.id), sh.held.Load())
	}
	pw.Metric("lockd_waiting", "In-flight acquires per shard (waiter-budget usage).", "gauge")
	for _, sh := range s.shards {
		pw.Sample("lockd_waiting", shardLabel(sh.id), sh.waiting.Load())
	}
	pw.Metric("lockd_locks", "Live named locks per shard.", "gauge")
	for _, sh := range s.shards {
		sh.mu.Lock()
		n := len(sh.entries)
		sh.mu.Unlock()
		pw.Sample("lockd_locks", shardLabel(sh.id), int64(n))
	}

	for _, cf := range shardCounters {
		pw.Metric(cf.name, cf.help, "counter")
		for _, sh := range s.shards {
			pw.Sample(cf.name, shardLabel(sh.id), cf.get(sh).Load())
		}
	}

	pw.Metric("lockd_global_shed_total", "Acquires shed by the global in-flight gate.", "counter")
	pw.Sample("lockd_global_shed_total", nil, s.globalSheds.Load())
	pw.Metric("lockd_inflight", "In-flight requests (global gate usage).", "gauge")
	pw.Sample("lockd_inflight", nil, s.inflight.Load())
	pw.Metric("lockd_draining", "1 while the server is draining.", "gauge")
	var draining int64
	if s.draining.Load() {
		draining = 1
	}
	pw.Sample("lockd_draining", nil, draining)
	if err := pw.Err(); err != nil {
		return err
	}

	return s.obsReg.WritePrometheus(w)
}

func shardLabel(id int) []promtext.Label {
	return []promtext.Label{{Name: "shard", Value: strconv.Itoa(id)}}
}

// MetricsHandler serves WriteMetrics; ?format=json returns the per-shard
// obs snapshots (the lockd counters are available via Stats).
func (s *Server) MetricsHandler() http.Handler {
	obsHandler := s.obsReg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			obsHandler.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
}
