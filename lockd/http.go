package lockd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Wire types. Durations travel as integer milliseconds; fencing tokens as
// uint64. A zero ttl_ms/wait_ms selects the server default.

// AcquireRequest is the POST /v1/acquire body.
type AcquireRequest struct {
	Name   string `json:"name"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

// LeaseResponse answers a granted acquire or renew.
type LeaseResponse struct {
	Name        string `json:"name"`
	Token       uint64 `json:"token"`
	TTLMS       int64  `json:"ttl_ms"`
	ExpiresInMS int64  `json:"expires_in_ms"`
}

// ReleaseRequest is the POST /v1/release body.
type ReleaseRequest struct {
	Name  string `json:"name"`
	Token uint64 `json:"token"`
}

// RenewRequest is the POST /v1/renew body.
type RenewRequest struct {
	Name  string `json:"name"`
	Token uint64 `json:"token"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

// ErrorResponse carries a machine-readable code alongside the message.
// Codes: overloaded, table_full, draining, wait_timeout, stale_token,
// expired, unknown_lock, bad_request.
type ErrorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// InspectResponse answers GET /v1/inspect.
type InspectResponse struct {
	Name     string `json:"name"`
	Held     bool   `json:"held"`
	Token    uint64 `json:"token,omitempty"`
	RemainMS int64  `json:"remain_ms,omitempty"`
	Waiters  int64  `json:"waiters"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/acquire  {name, ttl_ms?, wait_ms?} -> 200 lease | 408 | 503
//	POST /v1/release  {name, token}             -> 200 | 404 | 409 | 503(drain only: no)
//	POST /v1/renew    {name, token, ttl_ms?}    -> 200 lease | 404 | 409
//	GET  /v1/inspect?name=N                     -> 200 | 404
//	GET  /metrics                               -> Prometheus text (?format=json)
//	GET  /healthz                               -> 200 | 503 while draining
//
// Acquire handlers pass the request context straight into the abortable
// lock, so a client that disconnects mid-wait is reaped via bounded
// abort. Releases and renews are allowed during drain — holders must be
// able to let go while the server empties.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/acquire", s.handleAcquire)
	mux.HandleFunc("POST /v1/release", s.handleRelease)
	mux.HandleFunc("POST /v1/renew", s.handleRenew)
	mux.HandleFunc("GET /v1/inspect", s.handleInspect)
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// maxBody bounds request bodies; lockd requests are tiny.
const maxBody = 1 << 16

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return false
	}
	return true
}

// writeJSON responds under the configured write deadline, so a stalled
// reader cannot pin the handler goroutine past WriteTimeout. The write
// error is surfaced so acquire grants can be rolled back when the waiter
// vanished before the lease reached it.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) error {
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) // best-effort; ErrNotSupported is fine
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusServiceUnavailable {
		secs := int64(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, status, ErrorResponse{Code: code, Error: msg})
}

// writeServiceError maps the service-layer sentinels onto HTTP.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error())
	case errors.Is(err, ErrTableFull):
		s.writeError(w, http.StatusServiceUnavailable, "table_full", err.Error())
	case errors.Is(err, ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, ErrWaitTimeout):
		s.writeError(w, http.StatusRequestTimeout, "wait_timeout", err.Error())
	case errors.Is(err, ErrStale):
		s.writeError(w, http.StatusConflict, "stale_token", err.Error())
	case errors.Is(err, ErrExpired):
		s.writeError(w, http.StatusConflict, "expired", err.Error())
	case errors.Is(err, ErrUnknown):
		s.writeError(w, http.StatusNotFound, "unknown_lock", err.Error())
	case errors.Is(err, ErrBadName):
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	default:
		// Context errors surface when the client cancelled or vanished;
		// the response is a courtesy to whoever is still listening.
		s.writeError(w, http.StatusRequestTimeout, "wait_timeout", err.Error())
	}
}

func ms(d time.Duration) int64 { return d.Milliseconds() }

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if !s.decode(w, r, &req) {
		return
	}
	ls, err := s.Acquire(r.Context(), req.Name,
		time.Duration(req.TTLMS)*time.Millisecond,
		time.Duration(req.WaitMS)*time.Millisecond)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	if r.Context().Err() != nil {
		// The grant raced the client's disconnect: nobody will ever learn
		// this token, so roll the lease back now instead of leaving the
		// name ghost-held until TTL expiry.
		s.Release(ls.Name, ls.Token)
		return
	}
	err = s.writeJSON(w, http.StatusOK, LeaseResponse{
		Name:        ls.Name,
		Token:       ls.Token,
		TTLMS:       ms(ls.TTL),
		ExpiresInMS: ms(ls.TTL),
	})
	if err != nil {
		// The lease never reached the client (disconnect or write-deadline
		// blow mid-response): same ghost-holder hazard, same rollback. A
		// kernel-buffered write can still slip through; TTL expiry remains
		// the backstop for that residue.
		s.Release(ls.Name, ls.Token)
	}
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.Release(req.Name, req.Token); err != nil {
		s.writeServiceError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"released": true})
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !s.decode(w, r, &req) {
		return
	}
	ls, err := s.Renew(req.Name, req.Token, time.Duration(req.TTLMS)*time.Millisecond)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, LeaseResponse{
		Name:        ls.Name,
		Token:       ls.Token,
		TTLMS:       ms(ls.TTL),
		ExpiresInMS: ms(ls.Expiry.Sub(s.cfg.now())),
	})
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	info, ok := s.Inspect(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown_lock", ErrUnknown.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, InspectResponse{
		Name:     info.Name,
		Held:     info.Held,
		Token:    info.Token,
		RemainMS: ms(info.Remain),
		Waiters:  info.Waiters,
	})
}
