package lockd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sublock/internal/promtext"
	"sublock/lockd/client"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return v
}

func TestHTTPAcquireReleaseViaClient(t *testing.T) {
	s, ts := newHTTPServer(t, fastCfg())
	cl := client.New(ts.URL)
	ctx := context.Background()

	ls, err := cl.Acquire(ctx, "web", 2*time.Second, time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if ls.Token == 0 || ls.Name != "web" {
		t.Fatalf("lease = %+v, want nonzero token for 'web'", ls)
	}
	if err := cl.Renew(ctx, ls, 2*time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := cl.Release(ctx, ls); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := cl.Release(ctx, ls); !errors.Is(err, client.ErrStale) {
		t.Fatalf("double release = %v, want client.ErrStale", err)
	}
	if st := s.Stats(); st.Acquires != 1 || st.Releases != 1 || st.Renews != 1 {
		t.Fatalf("stats = %+v, want one acquire/renew/release", st)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newHTTPServer(t, fastCfg())

	// Unknown name on release -> 404 unknown_lock.
	resp := postJSON(t, ts.URL+"/v1/release", ReleaseRequest{Name: "ghost", Token: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown release status = %d, want 404", resp.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != "unknown_lock" {
		t.Fatalf("code = %q, want unknown_lock", e.Code)
	}

	// Bad body -> 400 bad_request.
	resp, err := http.Post(ts.URL+"/v1/acquire", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Empty name -> 400 bad_request.
	resp = postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty name status = %d, want 400", resp.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != "bad_request" {
		t.Fatalf("code = %q, want bad_request", e.Code)
	}

	// Held elsewhere with a tiny wait -> 408 wait_timeout.
	resp = postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "busy", TTLMS: 60_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("holder status = %d, want 200", resp.StatusCode)
	}
	holder := decodeBody[LeaseResponse](t, resp)
	resp = postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "busy", WaitMS: 50})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("timeout status = %d, want 408", resp.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != "wait_timeout" {
		t.Fatalf("code = %q, want wait_timeout", e.Code)
	}

	// Stale token -> 409 stale_token.
	resp = postJSON(t, ts.URL+"/v1/release", ReleaseRequest{Name: "busy", Token: holder.Token + 99})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale status = %d, want 409", resp.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != "stale_token" {
		t.Fatalf("code = %q, want stale_token", e.Code)
	}
}

// TestHTTPShedRetryAfter: a saturated shard answers 503 with a parseable
// Retry-After hint and the machine-readable "overloaded" code.
func TestHTTPShedRetryAfter(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 1
	cfg.ShardWaiterBudget = 1
	cfg.RetryAfter = 3 * time.Second
	s, ts := newHTTPServer(t, cfg)

	resp := postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "hot", TTLMS: 60_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("holder status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Park one waiter to fill the budget, then overflow it.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		body, _ := json.Marshal(AcquireRequest{Name: "hot", WaitMS: 30_000})
		req, _ := http.NewRequestWithContext(wctx, http.MethodPost, ts.URL+"/v1/acquire", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never parked; stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp = postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "hot", WaitMS: 100})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", resp.Header.Get("Retry-After"))
	}
	if secs != 3 {
		t.Fatalf("Retry-After = %d, want the configured 3", secs)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != "overloaded" {
		t.Fatalf("code = %q, want overloaded", e.Code)
	}
	wcancel()
	<-waiterDone
}

// TestHTTPClientDisconnectReaped: a waiter whose HTTP request is cancelled
// mid-wait is reaped server-side — the request context feeds the abortable
// lock directly.
func TestHTTPClientDisconnectReaped(t *testing.T) {
	s, ts := newHTTPServer(t, fastCfg())

	resp := postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "gone", TTLMS: 60_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("holder status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(AcquireRequest{Name: "gone", WaitMS: 30_000})
		req, _ := http.NewRequestWithContext(wctx, http.MethodPost, ts.URL+"/v1/acquire", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never parked; stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	wcancel() // the client vanishes
	<-done
	deadline = time.Now().Add(2 * time.Second)
	for s.Stats().Waiting != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnected waiter not reaped; stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHTTPInspectAndHealthz(t *testing.T) {
	s, ts := newHTTPServer(t, fastCfg())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "seen", TTLMS: 60_000})
	lease := decodeBody[LeaseResponse](t, resp)
	resp, err = http.Get(ts.URL + "/v1/inspect?name=seen")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[InspectResponse](t, resp)
	if !info.Held || info.Token != lease.Token || info.RemainMS <= 0 {
		t.Fatalf("inspect = %+v, want held with token %d and remaining TTL", info, lease.Token)
	}
	resp, err = http.Get(ts.URL + "/v1/inspect?name=ghost")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("inspect ghost = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Drain flips healthz to 503 so load balancers stop routing here.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestMetricsEndpoint: the exposition includes the lockd families and the
// per-shard abortable/obs histograms, and passes the promtext linter.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newHTTPServer(t, fastCfg())

	resp := postJSON(t, ts.URL+"/v1/acquire", AcquireRequest{Name: "metered", TTLMS: 60_000})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, family := range []string{
		"lockd_held", "lockd_waiting", "lockd_locks",
		"lockd_acquires_total", "lockd_shed_total", "lockd_lease_expiries_total",
		"lockd_fencing_rejections_total", "lockd_global_shed_total", "lockd_draining",
		"abortable_acquire_ns",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics output missing family %q", family)
		}
	}
	if errs := promtext.Lint(bytes.NewReader(raw)); len(errs) > 0 {
		t.Fatalf("promtext lint: %v", errs)
	}
}
