package lockd

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sublock/internal/testutil"
)

// fastCfg returns a config tuned for tests: aggressive sweeping and short
// defaults so lease-expiry paths run in milliseconds.
func fastCfg() Config {
	return Config{
		Shards:        4,
		PoolSize:      4,
		SweepInterval: 5 * time.Millisecond,
		TTL:           time.Second,
		Wait:          time.Second,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestAcquireReleaseCycle(t *testing.T) {
	s := newTestServer(t, fastCfg())
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "alpha", 0, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if ls.Token == 0 {
		t.Fatal("fencing token must be nonzero")
	}
	info, ok := s.Inspect("alpha")
	if !ok || !info.Held || info.Token != ls.Token {
		t.Fatalf("inspect = %+v, %v; want held with token %d", info, ok, ls.Token)
	}
	if err := s.Release("alpha", ls.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
	// Double release is a fencing rejection, not a success.
	if err := s.Release("alpha", ls.Token); !errors.Is(err, ErrStale) {
		t.Fatalf("double release = %v, want ErrStale", err)
	}

	ls2, err := s.Acquire(ctx, "alpha", 0, 0)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if ls2.Token <= ls.Token {
		t.Fatalf("tokens must increase: %d then %d", ls.Token, ls2.Token)
	}
}

func TestBadNamesAndUnknown(t *testing.T) {
	s := newTestServer(t, fastCfg())
	ctx := context.Background()

	if _, err := s.Acquire(ctx, "", 0, 0); !errors.Is(err, ErrBadName) {
		t.Fatalf("empty name = %v, want ErrBadName", err)
	}
	long := make([]byte, MaxNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := s.Acquire(ctx, string(long), 0, 0); !errors.Is(err, ErrBadName) {
		t.Fatalf("oversized name = %v, want ErrBadName", err)
	}
	if err := s.Release("never-seen", 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown release = %v, want ErrUnknown", err)
	}
	if _, err := s.Renew("never-seen", 1, 0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown renew = %v, want ErrUnknown", err)
	}
	if _, ok := s.Inspect("never-seen"); ok {
		t.Fatal("inspect of unknown name reported ok")
	}
}

// TestLeaseExpiryReclaim is the crashed-holder scenario: the holder never
// releases, the sweeper reclaims at TTL, the next waiter is granted a
// larger token, and the dead holder's release is fenced out.
func TestLeaseExpiryReclaim(t *testing.T) {
	s := newTestServer(t, fastCfg())
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "crashy", 50*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Simulate the crash: no release. The next acquire must be granted
	// once the sweeper reclaims the lease.
	start := time.Now()
	ls2, err := s.Acquire(ctx, "crashy", 0, 2*time.Second)
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("reclaim took %v, want prompt reclaim after the 50ms TTL", waited)
	}
	if ls2.Token <= ls.Token {
		t.Fatalf("reclaimed grant token %d not above expired token %d", ls2.Token, ls.Token)
	}
	// The crashed holder's late release must be rejected by fencing.
	if err := s.Release("crashy", ls.Token); !errors.Is(err, ErrStale) {
		t.Fatalf("stale release = %v, want ErrStale", err)
	}
	st := s.Stats()
	if st.Expiries < 1 {
		t.Fatalf("Stats().Expiries = %d, want >= 1", st.Expiries)
	}
	if st.FencingRejects < 1 {
		t.Fatalf("Stats().FencingRejects = %d, want >= 1", st.FencingRejects)
	}
	if err := s.Release("crashy", ls2.Token); err != nil {
		t.Fatalf("live release: %v", err)
	}
}

// TestReleaseAfterExpiry: with the sweeper effectively disabled, a
// matching-token release on an expired lease reclaims the lock but reports
// ErrExpired so the holder learns mutual exclusion may have lapsed.
func TestReleaseAfterExpiry(t *testing.T) {
	cfg := fastCfg()
	cfg.SweepInterval = time.Hour
	s := newTestServer(t, cfg)
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "late", 30*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := s.Release("late", ls.Token); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired release = %v, want ErrExpired", err)
	}
	// The reclaim freed the lock: the next acquire is granted immediately.
	ls2, err := s.Acquire(ctx, "late", 0, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire after expired release: %v", err)
	}
	if ls2.Token <= ls.Token {
		t.Fatalf("token did not advance: %d then %d", ls.Token, ls2.Token)
	}
}

func TestRenewExtendsLease(t *testing.T) {
	s := newTestServer(t, fastCfg())
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "renewed", 80*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Keep renewing past several multiples of the original TTL.
	for i := 0; i < 5; i++ {
		time.Sleep(30 * time.Millisecond)
		if _, err := s.Renew("renewed", ls.Token, 80*time.Millisecond); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if err := s.Release("renewed", ls.Token); err != nil {
		t.Fatalf("release after renews = %v, want success (lease should still be live)", err)
	}
}

func TestRenewRejections(t *testing.T) {
	cfg := fastCfg()
	cfg.SweepInterval = time.Hour
	s := newTestServer(t, cfg)
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "r", 30*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := s.Renew("r", ls.Token+1, 0); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-token renew = %v, want ErrStale", err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Renew("r", ls.Token, 0); !errors.Is(err, ErrExpired) {
		t.Fatalf("post-expiry renew = %v, want ErrExpired", err)
	}
}

// TestFencingMonotonicAcrossRetire: tokens keep increasing even after the
// name's lock is idle-retired and re-created, because the fencing counter
// lives on the shard, not the entry.
func TestFencingMonotonicAcrossRetire(t *testing.T) {
	cfg := fastCfg()
	cfg.IdleRetire = 20 * time.Millisecond
	s := newTestServer(t, cfg)
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "phoenix", 0, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := s.Release("phoenix", ls.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Locks != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle entry never retired; stats %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Retired; got < 1 {
		t.Fatalf("Stats().Retired = %d, want >= 1", got)
	}
	ls2, err := s.Acquire(ctx, "phoenix", 0, 0)
	if err != nil {
		t.Fatalf("re-acquire after retire: %v", err)
	}
	if ls2.Token <= ls.Token {
		t.Fatalf("token regressed across retire: %d then %d", ls.Token, ls2.Token)
	}
}

// TestOverloadShedding: with the shard waiter budget saturated on a hot
// name, excess acquires are shed immediately with ErrOverloaded and the
// in-flight waiter count stays bounded by the budget.
func TestOverloadShedding(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 1
	cfg.ShardWaiterBudget = 4
	s := newTestServer(t, cfg)
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "hot", time.Minute, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	const attackers = 32
	var shed, waiting atomic.Int64
	var wg sync.WaitGroup
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for i := 0; i < attackers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Acquire(wctx, "hot", 0, 30*time.Second)
			switch {
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			case errors.Is(err, context.Canceled):
				waiting.Add(1)
			case err == nil:
				t.Error("attacker acquired a lock held for a minute")
			}
		}()
	}

	// Wait until every attacker has either been shed or parked, then check
	// the waiter population never exceeded the budget.
	deadline := time.Now().Add(2 * time.Second)
	for shed.Load()+s.Stats().Waiting < attackers {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if w := s.Stats().Waiting; w > int64(cfg.ShardWaiterBudget) {
		t.Fatalf("waiting = %d, want <= budget %d", w, cfg.ShardWaiterBudget)
	}
	if got := shed.Load(); got < attackers-int64(cfg.ShardWaiterBudget) {
		t.Fatalf("shed = %d, want >= %d", got, attackers-cfg.ShardWaiterBudget)
	}
	if got := s.Stats().Sheds; got < 1 {
		t.Fatalf("Stats().Sheds = %d, want >= 1", got)
	}

	wcancel()
	wg.Wait()
	if err := s.Release("hot", ls.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestGlobalInFlightGate: the cross-shard gate sheds before any shard
// budget is consulted.
func TestGlobalInFlightGate(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 1
	cfg.MaxInFlight = 1
	s := newTestServer(t, cfg)
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "gate", time.Minute, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	wctx, wcancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Acquire(wctx, "gate", 0, 30*time.Second) // occupies the only slot
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never registered in flight; stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Acquire(ctx, "other", 0, time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("gated acquire = %v, want ErrOverloaded", err)
	}
	if got := s.Stats().GlobalSheds; got < 1 {
		t.Fatalf("Stats().GlobalSheds = %d, want >= 1", got)
	}
	wcancel()
	<-done
	if err := s.Release("gate", ls.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestTableFullAndLRU: at the lock-table cap, creating a new name evicts
// the least-recently-used idle entry; with everything held the create is
// shed with ErrTableFull.
func TestTableFullAndLRU(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 1
	cfg.MaxLocksPerShard = 1
	cfg.SweepInterval = time.Hour // eviction must come from the LRU path
	s := newTestServer(t, cfg)
	ctx := context.Background()

	lsA, err := s.Acquire(ctx, "a", 0, 0)
	if err != nil {
		t.Fatalf("acquire a: %v", err)
	}
	if err := s.Release("a", lsA.Token); err != nil {
		t.Fatalf("release a: %v", err)
	}
	lsB, err := s.Acquire(ctx, "b", time.Minute, 0)
	if err != nil {
		t.Fatalf("acquire b (should evict idle a): %v", err)
	}
	st := s.Stats()
	if st.Locks != 1 || st.Retired < 1 {
		t.Fatalf("after eviction: locks=%d retired=%d, want 1 and >=1", st.Locks, st.Retired)
	}
	if _, err := s.Acquire(ctx, "c", 0, 50*time.Millisecond); !errors.Is(err, ErrTableFull) {
		t.Fatalf("acquire c with table full of held locks = %v, want ErrTableFull", err)
	}
	if err := s.Release("b", lsB.Token); err != nil {
		t.Fatalf("release b: %v", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := newTestServer(t, fastCfg())
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "slow", time.Minute, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	start := time.Now()
	if _, err := s.Acquire(ctx, "slow", 0, 50*time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("bounded wait = %v, want ErrWaitTimeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timeout took %v, want prompt return after the 50ms budget", waited)
	}
	if got := s.Stats().Timeouts; got != 1 {
		t.Fatalf("Stats().Timeouts = %d, want 1", got)
	}
	if err := s.Release("slow", ls.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestWaiterCancelReaped: cancelling a parked waiter's context unparks it
// promptly and leaves no goroutine behind — the wired-through bounded
// abort.
func TestWaiterCancelReaped(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(fastCfg())
	defer s.Close()
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "parked", time.Minute, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	wctx, wcancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(wctx, "parked", 0, 30*time.Second)
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never parked; stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	wcancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter not reaped within 2s")
	}
	if err := s.Release("parked", ls.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
	s.Close()
	testutil.WaitGoroutinesSettle(t, base, 3*time.Second)
}

// TestDrain: draining sheds new acquires, aborts every parked waiter
// within the deadline, and leaves no goroutine behind.
func TestDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(fastCfg())
	defer s.Close()
	ctx := context.Background()

	ls, err := s.Acquire(ctx, "drainme", time.Minute, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	const waiters = 3
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := s.Acquire(ctx, "drainme", 0, 30*time.Second)
			errs <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Waiting != waiters {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked; stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	dctx, dcancel := context.WithTimeout(ctx, 2*time.Second)
	defer dcancel()
	start := time.Now()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("drain took %v, want within the 2s deadline", took)
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrDraining) {
				t.Fatalf("drained waiter = %v, want ErrDraining", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("drained waiter never returned")
		}
	}
	if _, err := s.Acquire(ctx, "fresh", 0, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire = %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	// Held leases survive drain; release still works so holders can let go.
	if err := s.Release("drainme", ls.Token); err != nil {
		t.Fatalf("release during drain: %v", err)
	}
	s.Close()
	testutil.WaitGoroutinesSettle(t, base, 3*time.Second)
}

// TestMutualExclusion hammers one name from many goroutines through the
// full acquire/release path and asserts no two leases overlap.
func TestMutualExclusion(t *testing.T) {
	cfg := fastCfg()
	cfg.PoolSize = 2
	s := newTestServer(t, cfg)
	ctx := context.Background()

	const (
		goroutines = 8
		rounds     = 25
	)
	var inCS atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ls, err := s.Acquire(ctx, "cs", time.Minute, 30*time.Second)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if n := inCS.Add(1); n != 1 {
					t.Errorf("mutual exclusion violated: %d holders", n)
				}
				inCS.Add(-1)
				if err := s.Release("cs", ls.Token); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Acquires != goroutines*rounds {
		t.Fatalf("Stats().Acquires = %d, want %d", st.Acquires, goroutines*rounds)
	}
	if st.Held != 0 {
		t.Fatalf("Stats().Held = %d after all releases, want 0", st.Held)
	}
}

// TestManyNamesBounded: far more names than the per-shard cap stay
// memory-bounded through LRU eviction, and every acquire still succeeds.
func TestManyNamesBounded(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 2
	cfg.MaxLocksPerShard = 8
	cfg.SweepInterval = time.Hour
	s := newTestServer(t, cfg)
	ctx := context.Background()

	for i := 0; i < 200; i++ {
		name := "key-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
		ls, err := s.Acquire(ctx, name, 0, 0)
		if err != nil {
			t.Fatalf("acquire %q: %v", name, err)
		}
		if err := s.Release(name, ls.Token); err != nil {
			t.Fatalf("release %q: %v", name, err)
		}
	}
	st := s.Stats()
	if st.Locks > cfg.Shards*cfg.MaxLocksPerShard {
		t.Fatalf("live locks = %d, want <= %d", st.Locks, cfg.Shards*cfg.MaxLocksPerShard)
	}
	if st.Retired == 0 {
		t.Fatal("expected LRU retirements with 200 names over a 16-entry table")
	}
}
